"""CLI driver: ``python -m tools.crashgrid [--workload ...] [--backend ...]``.

Enumerates every (device, append-index) crash point of the chosen 2PC
workloads, prints one summary line per (backend, workload) grid, and
exits non-zero when any schedule breaks the all-or-nothing contract (a
:class:`~tools.crashgrid.CrashGridViolation` propagates with a
traceback — that is a bug in the engine, not in the schedule).

``--bench PATH`` additionally writes ``BENCH_txn.json``-style output:
the explored-schedule count per grid plus the 2PC commit path's
simulated-clock overhead against a raw, coordinator-less sharded load.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import kernels

from . import (
    WORKLOADS,
    CrashGridResult,
    measure_commit_overhead,
    run_crash_grid,
)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.crashgrid",
        description="exhaustive crash-schedule explorer for cross-shard 2PC",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=WORKLOADS,
        help="workload(s) to explore (default: all)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        help="kernel backend(s) to run (default: all available)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="shard count (default 2)"
    )
    parser.add_argument(
        "--copies", type=int, default=1, help="copies per shard (default 1)"
    )
    parser.add_argument(
        "--rows", type=int, default=24, help="rows in the load (default 24)"
    )
    parser.add_argument(
        "--bench",
        metavar="PATH",
        help="write schedule counts + 2PC overhead JSON to PATH",
    )
    parser.add_argument(
        "--points",
        action="store_true",
        help="print every explored crash point, not just grid summaries",
    )
    options = parser.parse_args(argv)

    workloads = options.workload or list(WORKLOADS)
    backends = options.backend or kernels.available_backends()
    results: list[CrashGridResult] = []
    for backend in backends:
        for workload in workloads:
            result = run_crash_grid(
                workload,
                backend=backend,
                shards=options.shards,
                copies=options.copies,
                rows=options.rows,
            )
            results.append(result)
            print(result.describe())
            if options.points:
                for point in result.points:
                    print(
                        f"  {point.device}#{point.index}: {point.outcome} "
                        f"(decision={point.decided or 'presumed-abort'}, "
                        f"rows={point.rows})"
                    )

    total = sum(r.schedules for r in results)
    print(
        f"crashgrid: {total} schedule(s) explored across "
        f"{len(results)} grid(s), zero partial states"
    )

    if options.bench:
        overhead = measure_commit_overhead(
            shards=options.shards, copies=options.copies, rows=options.rows
        )
        payload = {
            "schedules_explored": total,
            "grids": [
                {
                    "workload": r.workload,
                    "backend": r.backend,
                    "devices": list(r.devices),
                    "appends_per_device": list(r.appends_per_device),
                    "schedules": r.schedules,
                    "committed": r.committed,
                    "aborted": r.aborted,
                }
                for r in results
            ],
            "commit_overhead": overhead,
        }
        with open(options.bench, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench written to {options.bench}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
