"""Exhaustive crash-schedule explorer for cross-shard 2PC.

The atomicity claim of :mod:`repro.txn` — a multi-shard write commits
everywhere or nowhere, no matter when the process dies — is not the kind
of claim a few hand-picked crash tests settle.  This tool settles it by
**enumeration**: a reference run counts every append the workload makes
on every durable device (the coordinator's decision log, each shard
copy's WAL, each shard copy's data disk), and the grid then re-executes
the workload once per ``(device, append index)`` pair with a
deterministic crash armed at exactly that point.  After each crash the
world recovers (:meth:`~repro.txn.TransactionCoordinator.recover`) and
must land in one of exactly two states:

* **committed** — the post-recovery sharded scan is bit-identical to the
  fault-free oracle, and the decision log holds a durable ``commit``
  verdict for the workload's gid;
* **aborted** — the scan is bit-identical to the untouched baseline, and
  the decision log holds *no* commit verdict (presumed abort).

Any other landing — a partial write, a scan matching neither state, an
outcome contradicting the decision log, a crash point that never fired,
or a second recovery pass that is not a no-op — raises
:class:`CrashGridViolation`.  Every append index is visited; there are
no sampled or skipped schedules, and the grid refuses to report success
unless the enumeration was complete.

Run ``python -m tools.crashgrid`` for the CLI (writes ``BENCH_txn.json``
with the explored-schedule count and the 2PC commit-path overhead
against a raw, coordinator-less sharded load).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro import kernels
from repro.relational import Attribute, IntEncoder, Schema
from repro.shard import ShardedDatabase
from repro.storage.errors import SimulatedCrashError
from repro.txn import TransactionCoordinator

__all__ = [
    "CrashGridResult",
    "CrashGridViolation",
    "CrashPoint",
    "WORKLOADS",
    "run_crash_grid",
    "run_crash_grids",
]

#: index dimensions / shard attribute of the grid's fixed world
DIMS = ("a1", "a2")
SHARD_ATTR = "a1"

#: the full-domain query whose sorted rows fingerprint the world
FULL_QUERY = {"a1": (0, 1023)}
SORT_ATTR = "a2"

#: the two workload shapes the grid explores
WORKLOADS = ("load", "insert")


class CrashGridViolation(AssertionError):
    """A crash schedule broke the all-or-nothing recovery contract."""


@dataclass(frozen=True)
class CrashPoint:
    """What one (device, append-index) crash schedule did."""

    device: str
    index: int  #: 1-based append index the crash was armed at
    outcome: str  #: "committed" | "aborted"
    rows: int  #: row total after recovery
    decided: str  #: decision-log verdict for the gid ("" = presumed abort)


@dataclass(frozen=True)
class CrashGridResult:
    """One workload's complete enumeration over every device."""

    workload: str
    backend: str
    devices: tuple[str, ...]
    appends_per_device: tuple[int, ...]
    points: tuple[CrashPoint, ...] = field(repr=False)

    @property
    def schedules(self) -> int:
        return len(self.points)

    @property
    def committed(self) -> int:
        return sum(1 for p in self.points if p.outcome == "committed")

    @property
    def aborted(self) -> int:
        return sum(1 for p in self.points if p.outcome == "aborted")

    def describe(self) -> str:
        return (
            f"workload={self.workload:<7s} backend={self.backend:<6s} "
            f"devices={len(self.devices)} schedules={self.schedules} "
            f"committed={self.committed} aborted={self.aborted}"
        )


def _grid_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def _grid_rows(count: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (rng.randrange(1024), rng.randrange(1024), i) for i in range(count)
    ]


def _build_world(
    *, shards: int, copies: int, page_capacity: int
) -> tuple[ShardedDatabase, TransactionCoordinator]:
    sdb = ShardedDatabase(
        _grid_schema(),
        DIMS,
        SHARD_ATTR,
        shards=shards,
        copies=copies,
        page_capacity=page_capacity,
        wal=True,
    )
    return sdb, TransactionCoordinator(sdb)


def _fingerprint(sdb: ShardedDatabase) -> tuple:
    """The sharded scan over the full domain: the grid's equality oracle."""
    result = sdb.sorted_scan(FULL_QUERY, SORT_ATTR)
    if result.partial or result.degraded:
        raise CrashGridViolation(
            "fingerprint scan degraded in a fault-free world"
        )
    return tuple(result.rows)


def _world_clock(
    sdb: ShardedDatabase, txn: "TransactionCoordinator | None"
) -> float:
    """Summed simulated seconds across every device in the world."""
    total = sdb.clock_total()
    if txn is not None:
        total += txn.log.device.clock
    return total


def _run_workload(
    txn: TransactionCoordinator,
    workload: str,
    rows: list[tuple],
    extra: list[tuple],
) -> None:
    """One global transaction (callers pre-load the insert baseline)."""
    if workload == "load":
        txn.atomic_load(rows)
    elif workload == "insert":
        txn.atomic_insert(extra)
    else:  # pragma: no cover - guarded by run_crash_grid
        raise ValueError(f"unknown workload {workload!r}")


def run_crash_grid(
    workload: str = "load",
    *,
    backend: "str | None" = None,
    shards: int = 2,
    copies: int = 1,
    rows: int = 24,
    extra_rows: int = 8,
    page_capacity: int = 8,
    seed: int = 99,
) -> CrashGridResult:
    """Enumerate every crash point of one workload; raise on any breach.

    The ``insert`` workload pre-loads ``rows`` rows fault-free (through
    the coordinator, so the explored transaction is the *second* gid)
    and then crashes an ``atomic_insert`` of ``extra_rows`` more;
    ``load`` crashes the initial ``atomic_load`` itself.
    """
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; pick {WORKLOADS}")
    backend_name = backend or kernels.get_backend().name
    data = _grid_rows(rows, seed)
    extra = _grid_rows(extra_rows, seed + 1)

    with kernels.use_backend(backend_name):
        # reference run: count appends, fingerprint both landing states
        sdb, txn = _build_world(
            shards=shards, copies=copies, page_capacity=page_capacity
        )
        if workload == "insert":
            txn.atomic_load(data)
        baseline_fp = _fingerprint(sdb)
        devices = txn.devices()
        before = {dev: txn.append_count(dev) for dev in devices}
        _run_workload(txn, workload, data, extra)
        gid = f"{workload}#{0 if workload == 'load' else 1}"
        counts = {
            dev: txn.append_count(dev) - before[dev] for dev in devices
        }
        oracle_fp = _fingerprint(sdb)
        if oracle_fp == baseline_fp:
            raise CrashGridViolation(
                "workload is a no-op; the grid would prove nothing"
            )

        points: list[CrashPoint] = []
        for device in devices:
            for index in range(1, counts[device] + 1):
                sdb, txn = _build_world(
                    shards=shards, copies=copies, page_capacity=page_capacity
                )
                if workload == "insert":
                    txn.atomic_load(data)
                txn.crash_after(device, index)
                fired = False
                try:
                    _run_workload(txn, workload, data, extra)
                except SimulatedCrashError:
                    fired = True
                if not fired:
                    raise CrashGridViolation(
                        f"crash at {device}#{index} never fired — the "
                        "reference count claims this append happens"
                    )
                report = txn.recover()
                fp = _fingerprint(sdb)
                again = txn.recover()
                if again.resolved_commits or again.resolved_aborts or again.reacked:
                    raise CrashGridViolation(
                        f"{device}#{index}: second recovery pass was not "
                        f"a no-op ({again.describe()})"
                    )
                if _fingerprint(sdb) != fp:
                    raise CrashGridViolation(
                        f"{device}#{index}: second recovery pass changed "
                        "the recovered world"
                    )
                decided = txn.log.decision_for(gid) or ""
                if fp == oracle_fp:
                    outcome = "committed"
                    if decided != "commit":
                        raise CrashGridViolation(
                            f"{device}#{index}: world holds the committed "
                            f"state but the decision log says {decided!r}"
                        )
                elif fp == baseline_fp:
                    outcome = "aborted"
                    if decided == "commit":
                        raise CrashGridViolation(
                            f"{device}#{index}: decision log committed "
                            f"{gid!r} but the world rolled back"
                        )
                else:
                    raise CrashGridViolation(
                        f"{device}#{index}: post-recovery world matches "
                        "neither the oracle nor the baseline — a partial "
                        "write survived"
                    )
                points.append(
                    CrashPoint(
                        device=device,
                        index=index,
                        outcome=outcome,
                        rows=report.total_rows,
                        decided=decided,
                    )
                )
        expected = sum(counts[dev] for dev in devices)
        if len(points) != expected:
            raise CrashGridViolation(
                f"enumeration incomplete: visited {len(points)} of "
                f"{expected} crash points"
            )
        return CrashGridResult(
            workload=workload,
            backend=backend_name,
            devices=devices,
            appends_per_device=tuple(counts[dev] for dev in devices),
            points=tuple(points),
        )


def run_crash_grids(
    workloads: Iterable[str] = WORKLOADS,
    *,
    backends: "Iterable[str] | None" = None,
    **kwargs: object,
) -> list[CrashGridResult]:
    """The full grid: every workload on every requested backend."""
    names = list(backends) if backends else kernels.available_backends()
    results: list[CrashGridResult] = []
    for backend in names:
        for workload in workloads:
            results.append(
                run_crash_grid(workload, backend=backend, **kwargs)  # type: ignore[arg-type]
            )
    return results


def measure_commit_overhead(
    *,
    shards: int = 2,
    copies: int = 1,
    rows: int = 24,
    page_capacity: int = 8,
    seed: int = 99,
) -> dict:
    """Simulated-clock cost of the 2PC commit path vs a raw sharded load.

    Both worlds run ``wal=True``; the raw world loads without a
    coordinator (per-copy local WAL batches, no prepare forces, no
    decision log), so the difference prices exactly what 2PC adds:
    the per-participant prepare force, the coordinator's three decision
    records, and their verified-force overhead.
    """
    data = _grid_rows(rows, seed)
    raw = ShardedDatabase(
        _grid_schema(),
        DIMS,
        SHARD_ATTR,
        shards=shards,
        copies=copies,
        page_capacity=page_capacity,
        wal=True,
    )
    raw.load(data)
    raw_clock = _world_clock(raw, None)
    sdb, txn = _build_world(
        shards=shards, copies=copies, page_capacity=page_capacity
    )
    txn.atomic_load(data)
    txn_clock = _world_clock(sdb, txn)
    return {
        "rows": rows,
        "shards": shards,
        "copies": copies,
        "raw_load_seconds": round(raw_clock, 6),
        "txn_load_seconds": round(txn_clock, 6),
        "overhead_seconds": round(txn_clock - raw_clock, 6),
        "overhead_ratio": round(txn_clock / raw_clock, 4) if raw_clock else None,
    }
