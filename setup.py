"""Legacy shim so editable installs work offline (no `wheel` package
available in this environment; pip then needs the setup.py develop path).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
