"""Tests for the streaming TPC-D generator API (``repro.tpcd.datagen``).

The streaming family's contract: seed-deterministic, O(batch) memory
(pure generators — nothing is materialized), and *prefix-stable*: the
SF 0.01 stream is a literal prefix of the SF 1 stream, so a scaled-down
test dataset and a full benchmark dataset agree row for row where they
overlap.
"""

from itertools import islice

import pytest

from repro.tpcd import (
    TPCDConfig,
    in_batches,
    stream_customers,
    stream_lineitems,
    stream_orders,
)
from repro.tpcd.schema import ANYDATE_HI, ORDERDATE_LO

SMALL = TPCDConfig(scale_factor=0.01)
LARGE = TPCDConfig(scale_factor=0.5)


class TestDeterminism:
    def test_streams_replay_identically(self):
        assert list(stream_customers(SMALL)) == list(stream_customers(SMALL))
        assert list(stream_orders(SMALL)) == list(stream_orders(SMALL))
        assert list(stream_lineitems(SMALL)) == list(stream_lineitems(SMALL))

    def test_seed_changes_the_stream(self):
        reseeded = TPCDConfig(scale_factor=0.01, seed=7)
        assert list(stream_orders(SMALL)) != list(stream_orders(reseeded))


class TestPrefixStability:
    def test_customers(self):
        small = list(stream_customers(SMALL))
        assert small == list(islice(stream_customers(LARGE), len(small)))

    def test_orders(self):
        small = list(stream_orders(SMALL))
        assert small == list(islice(stream_orders(LARGE), len(small)))

    def test_lineitems(self):
        small = list(stream_lineitems(SMALL))
        assert small == list(islice(stream_lineitems(LARGE), len(small)))


class TestShape:
    def test_row_counts_match_config(self):
        assert sum(1 for _ in stream_customers(SMALL)) == SMALL.customer_count
        assert sum(1 for _ in stream_orders(SMALL)) == SMALL.order_count

    def test_keys_are_dense_and_ordered(self):
        orderkeys = [row[0] for row in stream_orders(SMALL)]
        assert orderkeys == list(range(1, SMALL.order_count + 1))

    def test_custkeys_stay_in_domain(self):
        for _, custkey, *_ in stream_orders(SMALL):
            assert 1 <= custkey <= SMALL.customer_count

    def test_lineitem_ratios_and_domains(self):
        rows = list(stream_lineitems(SMALL))
        per_order = SMALL.max_lineitems_per_order
        assert SMALL.order_count <= len(rows) <= SMALL.order_count * per_order
        for row in rows:
            orderkey, linenumber, ship, commit, receipt, disc, qty, price = row
            assert 1 <= linenumber <= per_order
            assert ORDERDATE_LO <= ship <= ANYDATE_HI
            assert ORDERDATE_LO <= commit <= ANYDATE_HI
            assert ORDERDATE_LO <= receipt <= ANYDATE_HI
            assert 0 <= disc <= 10
            assert 1 <= qty <= 50
            assert price <= 11_000_000

    def test_lineitems_grouped_by_order(self):
        orderkeys = [row[0] for row in stream_lineitems(SMALL)]
        assert orderkeys == sorted(orderkeys)


class TestBatches:
    def test_batches_partition_the_stream(self):
        rows = list(stream_lineitems(SMALL))
        batches = list(in_batches(stream_lineitems(SMALL), 64))
        assert [row for batch in batches for row in batch] == rows
        assert all(len(batch) == 64 for batch in batches[:-1])
        assert 1 <= len(batches[-1]) <= 64

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            list(in_batches(iter([]), 0))
