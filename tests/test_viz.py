"""Tests for the ASCII visualizations."""

import random

import pytest

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, SimulatedDisk
from repro.viz import render_partitioning, render_sweep


def make_tree(bits=(3, 3), page_capacity=2, count=20, seed=0):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 64), ZSpace(bits), page_capacity=page_capacity)
    rng = random.Random(seed)
    for index in range(count):
        tree.insert(tuple(rng.randrange(1 << b) for b in bits), index)
    return tree


def test_partitioning_dimensions():
    tree = make_tree()
    art = render_partitioning(tree)
    lines = art.splitlines()
    assert len(lines) == 8
    assert all(len(line) == 8 for line in lines)


def test_partitioning_labels_match_regions():
    tree = make_tree()
    art = render_partitioning(tree)
    # number of distinct glyphs equals the number of regions (small tree)
    glyphs = {ch for line in art.splitlines() for ch in line}
    assert len(glyphs) == tree.region_count


def test_single_region_tree_uniform():
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 16), ZSpace((2, 2)), page_capacity=64)
    tree.insert((0, 0), "x")
    art = render_partitioning(tree)
    assert set(art.replace("\n", "")) == {"0"}


def test_sweep_rendering_marks_progress():
    tree = make_tree(count=40)
    box = QueryBox((1, 1), (6, 6))
    scan = tetris_sorted(tree, box, 1)
    list(scan)
    art = render_sweep(tree, box, scan.page_access_order[:2])
    assert "#" in art  # something retrieved
    assert " " in art  # something outside the box
    full = render_sweep(tree, box, scan.page_access_order)
    assert "·" not in full  # everything in-box retrieved at the end


def test_rejects_non_2d():
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 16), ZSpace((2, 2, 2)), page_capacity=4)
    with pytest.raises(ValueError):
        render_partitioning(tree)
    with pytest.raises(ValueError):
        render_sweep(tree, QueryBox((0, 0, 0), (1, 1, 1)), [])


def test_rejects_oversized_universe():
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 16), ZSpace((8, 8)), page_capacity=4)
    tree.insert((0, 0), "x")
    with pytest.raises(ValueError):
        render_partitioning(tree)


def test_render_order_z():
    from repro.viz import render_order

    art = render_order([2, 2])
    lines = art.splitlines()
    assert len(lines) == 4
    # bottom-left is Z-address 0, top-right is 15
    assert lines[-1].split()[0] == "0"
    assert lines[0].split()[-1] == "15"


def test_render_order_tetris():
    from repro.viz import render_order

    art = render_order([2, 2], tetris_dim=1)
    rows = [list(map(int, line.split())) for line in art.splitlines()]
    # in Tetris order for dim 1, each row (constant y) holds a contiguous
    # ordinal block: row y covers [4*y, 4*y + 3]
    for offset, row in enumerate(rows):
        y = len(rows) - 1 - offset
        assert sorted(row) == list(range(4 * y, 4 * y + 4))


def test_render_order_rejects_bad_shapes():
    from repro.viz import render_order

    with pytest.raises(ValueError):
        render_order([2, 2, 2])
    with pytest.raises(ValueError):
        render_order([8, 8])
