"""Tests for bottom-up bulk loading of B+-trees, IOTs and UB-Trees."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, IndexOrganizedTable
from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import BufferPool, SimulatedDisk


def make_tree(leaf_capacity=4, fanout=4):
    disk = SimulatedDisk()
    return BPlusTree(BufferPool(disk, 128), leaf_capacity, fanout=fanout), disk


class TestBPlusTreeBulkLoad:
    def test_roundtrip(self):
        tree, _ = make_tree()
        pairs = [(k, k * 2) for k in range(100)]
        tree.bulk_load(pairs)
        tree.check_invariants()
        assert list(tree.range_scan()) == pairs
        assert tree.record_count == 100

    def test_empty_input(self):
        tree, _ = make_tree()
        tree.bulk_load([])
        assert tree.record_count == 0
        assert list(tree.range_scan()) == []

    def test_single_record(self):
        tree, _ = make_tree()
        tree.bulk_load([(5, "x")])
        assert tree.search(5) == ["x"]
        tree.check_invariants()

    def test_fill_factor_controls_leaf_count(self):
        full, _ = make_tree(leaf_capacity=10)
        full.bulk_load([(k, k) for k in range(200)])
        loose, _ = make_tree(leaf_capacity=10)
        loose.bulk_load([(k, k) for k in range(200)], fill=0.5)
        assert loose.leaf_count > full.leaf_count
        loose.check_invariants()

    def test_equal_keys_kept_together(self):
        tree, _ = make_tree(leaf_capacity=4)
        pairs = [(k // 6, k) for k in range(60)]  # runs of 6 equal keys
        tree.bulk_load(pairs)
        tree.check_invariants()
        assert tree.overflow_pages > 0
        for key in range(10):
            assert len(tree.search(key)) == 6

    def test_rejects_unsorted(self):
        tree, _ = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(2, "a"), (1, "b")])

    def test_rejects_non_empty_tree(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        with pytest.raises(RuntimeError):
            tree.bulk_load([(2, "b")])

    def test_rejects_bad_fill(self):
        tree, _ = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(1, "a")], fill=0.0)

    def test_inserts_after_bulk_load(self):
        tree, _ = make_tree(leaf_capacity=4)
        tree.bulk_load([(k, k) for k in range(0, 100, 2)])
        for k in range(1, 100, 2):
            tree.insert(k, k)
        tree.check_invariants()
        assert [k for k, _ in tree.range_scan()] == list(range(100))

    def test_deep_tree(self):
        tree, _ = make_tree(leaf_capacity=2, fanout=3)
        tree.bulk_load([(k, k) for k in range(500)])
        tree.check_invariants()
        assert tree.height >= 4
        assert [k for k, _ in tree.range_scan(100, 110)] == list(range(100, 111))


@given(st.lists(st.integers(0, 300), max_size=300), st.floats(0.3, 1.0))
@settings(max_examples=60, deadline=None)
def test_bulk_load_matches_model(keys, fill):
    tree, _ = make_tree(leaf_capacity=5, fanout=4)
    pairs = sorted((k, k) for k in keys)
    tree.bulk_load(pairs, fill=fill)
    tree.check_invariants()
    assert list(tree.range_scan()) == pairs


class TestUBTreeBulkLoad:
    def test_same_queries_as_insert_loading(self):
        rng = random.Random(3)
        points = [(rng.randrange(32), rng.randrange(32)) for _ in range(500)]
        bulk = UBTree(BufferPool(SimulatedDisk(), 128), ZSpace([5, 5]), 4)
        bulk.bulk_load((p, i) for i, p in enumerate(points))
        bulk.check_invariants()
        grown = UBTree(BufferPool(SimulatedDisk(), 128), ZSpace([5, 5]), 4)
        for i, p in enumerate(points):
            grown.insert(p, i)
        box = QueryBox((3, 5), (27, 30))
        assert sorted(bulk.range_query(box)) == sorted(grown.range_query(box))

    def test_fewer_regions_than_insert_loading(self):
        rng = random.Random(4)
        points = [(rng.randrange(64), rng.randrange(64)) for _ in range(1500)]
        bulk = UBTree(BufferPool(SimulatedDisk(), 128), ZSpace([6, 6]), 8)
        bulk.bulk_load((p, i) for i, p in enumerate(points))
        grown = UBTree(BufferPool(SimulatedDisk(), 128), ZSpace([6, 6]), 8)
        for i, p in enumerate(points):
            grown.insert(p, i)
        assert bulk.region_count < grown.region_count

    def test_tetris_on_bulk_loaded_tree(self):
        rng = random.Random(5)
        points = [(rng.randrange(32), rng.randrange(32)) for _ in range(400)]
        tree = UBTree(BufferPool(SimulatedDisk(), 128), ZSpace([5, 5]), 4)
        tree.bulk_load((p, i) for i, p in enumerate(points))
        box = QueryBox((0, 4), (31, 28))
        out = list(tetris_sorted(tree, box, 1))
        values = [p[1] for p, _ in out]
        assert values == sorted(values)
        assert len(out) == sum(1 for p in points if 4 <= p[1] <= 28)

    def test_unhashable_payloads(self):
        tree = UBTree(BufferPool(SimulatedDisk(), 16), ZSpace([3, 3]), 4)
        tree.bulk_load([((1, 1), {"a": 1}), ((1, 1), {"b": 2})])
        assert len(tree.point_query((1, 1))) == 2


class TestTableBulkLoad:
    def make_db(self):
        schema = Schema(
            [Attribute("a", IntEncoder(0, 63)), Attribute("b", IntEncoder(0, 63))]
        )
        rng = random.Random(6)
        rows = [(rng.randrange(64), rng.randrange(64)) for _ in range(300)]
        return Database(), schema, rows

    def test_ub_table_bulk(self):
        db, schema, rows = self.make_db()
        table = db.create_ub_table("u", schema, dims=("a", "b"), page_capacity=8)
        table.bulk_load(rows)
        assert len(table) == 300
        assert sorted(table.range_query(None)) == sorted(rows)

    def test_iot_table_bulk(self):
        db, schema, rows = self.make_db()
        table = db.create_iot("i", schema, key=("a", "b"), page_capacity=8)
        table.bulk_load(rows)
        assert list(table.scan()) == sorted(rows)
        table.iot.check_invariants()
