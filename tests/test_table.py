"""Tests for Database and the table organizations."""

import random

import pytest

from repro.core.query_space import QueryBox
from repro.relational import (
    Attribute,
    Database,
    IntEncoder,
    Schema,
)


def make_schema():
    return Schema(
        [
            Attribute("a", IntEncoder(0, 63)),
            Attribute("b", IntEncoder(0, 63)),
            Attribute("c", IntEncoder(0, 1000)),
        ]
    )


def make_rows(count=200, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(64), rng.randrange(64), i) for i in range(count)]


class TestDatabase:
    def test_register_rejects_duplicates(self):
        db = Database()
        schema = make_schema()
        db.create_heap_table("t", schema, 10)
        with pytest.raises(ValueError):
            db.create_heap_table("t", schema, 10)

    def test_tables_registry(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        assert db.tables["t"] is table

    def test_reset_measurement_drops_buffer(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        table.load(make_rows(20))
        db.buffer.get(table.heap.page_ids[0])
        assert len(db.buffer) > 0
        db.reset_measurement()
        assert len(db.buffer) == 0

    def test_clock_exposed(self):
        db = Database()
        assert db.clock == 0.0
        db.disk.advance_clock(2.0)
        assert db.clock == pytest.approx(2.0)


class TestHeapTable:
    def test_scan_returns_all_rows(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        rows = make_rows(100)
        table.load(rows)
        assert len(table) == 100
        assert list(table.scan()) == rows
        assert table.page_count == 10

    def test_no_query_box(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        with pytest.raises(NotImplementedError):
            table.build_query_box({"a": (0, 1)})

    def test_secondary_index_fetch(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        rows = make_rows(100)
        table.load(rows)
        index = table.create_secondary_index("a")
        expected = sorted(r for r in rows if 10 <= r[0] <= 20)
        got = sorted(index.fetch(10, 20))
        assert got == expected

    def test_secondary_index_maintained_on_insert(self):
        db = Database()
        table = db.create_heap_table("t", make_schema(), 10)
        table.load(make_rows(50))
        index = table.create_secondary_index("a")
        table.insert((7, 7, 9999))
        assert (7, 7, 9999) in list(index.fetch(7, 7))


class TestIOTTable:
    def test_scan_sorted_by_key(self):
        db = Database()
        table = db.create_iot("t", make_schema(), key=("b", "a"), page_capacity=10)
        rows = make_rows(150)
        table.load(rows)
        out = list(table.scan())
        assert out == sorted(rows, key=lambda r: (r[1], r[0]))

    def test_scan_leading_range(self):
        db = Database()
        table = db.create_iot("t", make_schema(), key=("a", "c"), page_capacity=10)
        rows = make_rows(150)
        table.load(rows)
        out = list(table.scan_leading(10, 20))
        expected = sorted(
            (r for r in rows if 10 <= r[0] <= 20), key=lambda r: (r[0], r[2])
        )
        assert out == expected

    def test_scan_leading_open_ends(self):
        db = Database()
        table = db.create_iot("t", make_schema(), key=("a",), page_capacity=10)
        rows = make_rows(60)
        table.load(rows)
        assert len(list(table.scan_leading(None, 31))) == sum(
            1 for r in rows if r[0] <= 31
        )
        assert len(list(table.scan_leading(32, None))) == sum(
            1 for r in rows if r[0] >= 32
        )


class TestUBTable:
    def test_tetris_scan_dict_restrictions(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        rows = make_rows(200)
        table.load(rows)
        scan = table.tetris_scan({"b": (8, 40)}, "a")
        out = [row for _, row in scan]
        assert [r[0] for r in out] == sorted(r[0] for r in out)
        assert len(out) == sum(1 for r in rows if 8 <= r[1] <= 40)

    def test_build_query_box_encodes_values(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        box = table.build_query_box({"a": (3, 9)})
        assert box == QueryBox((3, 0), (9, 63))

    def test_build_query_box_rejects_non_dims(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        with pytest.raises(KeyError):
            table.build_query_box({"c": (0, 5)})

    def test_range_query_rows(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        rows = make_rows(200)
        table.load(rows)
        out = sorted(table.range_query({"a": (0, 15), "b": (16, 63)}))
        expected = sorted(r for r in rows if r[0] <= 15 and r[1] >= 16)
        assert out == expected

    def test_comparison_space(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        rows = make_rows(150)
        table.load(rows)
        from repro.core.query_space import IntersectionSpace

        space = IntersectionSpace(
            [table.build_query_box(None), table.comparison_space("a", "<", "b")]
        )
        out = sorted(table.range_query(space))
        assert out == sorted(r for r in rows if r[0] < r[1])

    def test_descending_tetris(self):
        db = Database()
        table = db.create_ub_table("t", make_schema(), dims=("a", "b"), page_capacity=10)
        table.load(make_rows(100))
        out = [row for _, row in table.tetris_scan(None, "b", descending=True)]
        values = [r[1] for r in out]
        assert values == sorted(values, reverse=True)
