"""Tests for query spaces: boxes, half-spaces, intersections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    PredicateSpace,
    QueryBox,
    box_is_empty,
)


# ----------------------------------------------------------------------
# QueryBox
# ----------------------------------------------------------------------
class TestQueryBox:
    def test_contains_point(self):
        box = QueryBox((1, 2), (5, 6))
        assert box.contains_point((1, 2))
        assert box.contains_point((5, 6))
        assert box.contains_point((3, 4))
        assert not box.contains_point((0, 4))
        assert not box.contains_point((3, 7))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            QueryBox((1, 2), (3,))

    def test_full(self):
        box = QueryBox.full((7, 15))
        assert box.lo == (0, 0)
        assert box.hi == (7, 15)

    def test_with_range_is_a_cluster(self):
        box = QueryBox.with_range((7, 15), 1, 3, 9)
        assert box.lo == (0, 3)
        assert box.hi == (7, 9)

    def test_intersects_box(self):
        box = QueryBox((2, 2), (4, 4))
        assert box.intersects_box((4, 4), (9, 9))
        assert box.intersects_box((0, 0), (2, 2))
        assert not box.intersects_box((5, 0), (9, 9))

    def test_clamp(self):
        a = QueryBox((0, 0), (5, 5))
        b = QueryBox((3, 2), (8, 4))
        c = a.clamp(b)
        assert c.lo == (3, 2)
        assert c.hi == (5, 4)

    def test_clamp_empty(self):
        a = QueryBox((0, 0), (2, 2))
        b = QueryBox((5, 5), (8, 8))
        assert a.clamp(b).is_empty
        assert box_is_empty(a.clamp(b).bounding_box())

    def test_restricted(self):
        box = QueryBox((0, 0), (9, 9)).restricted(1, 3, 5)
        assert box.lo == (0, 3)
        assert box.hi == (9, 5)

    def test_volume(self):
        assert QueryBox((0, 0), (1, 2)).volume() == 6
        assert QueryBox((3, 3), (2, 9)).volume() == 0

    def test_equality_and_hash(self):
        assert QueryBox((1, 1), (2, 2)) == QueryBox((1, 1), (2, 2))
        assert hash(QueryBox((1, 1), (2, 2))) == hash(QueryBox((1, 1), (2, 2)))
        assert QueryBox((1, 1), (2, 2)) != QueryBox((1, 1), (2, 3))


# ----------------------------------------------------------------------
# ComparisonSpace (the triangular Q4 space)
# ----------------------------------------------------------------------
class TestComparisonSpace:
    def test_contains_point(self):
        space = ComparisonSpace(3, 0, "<", 2)
        assert space.contains_point((1, 9, 5))
        assert not space.contains_point((5, 9, 5))
        assert not space.contains_point((6, 9, 5))

    def test_all_operators(self):
        for op, point, expected in [
            ("<", (1, 2), True),
            ("<", (2, 2), False),
            ("<=", (2, 2), True),
            (">", (3, 2), True),
            (">", (2, 2), False),
            (">=", (2, 2), True),
        ]:
            space = ComparisonSpace(2, 0, op, 1)
            assert space.contains_point(point) == expected, (op, point)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ComparisonSpace(2, 0, "!=", 1)
        with pytest.raises(ValueError):
            ComparisonSpace(2, 0, "<", 0)
        with pytest.raises(ValueError):
            ComparisonSpace(2, 0, "<", 5)

    def test_unbounded(self):
        assert ComparisonSpace(2, 0, "<", 1).bounding_box() is None

    def test_intersects_box_exact(self):
        space = ComparisonSpace(2, 0, "<", 1)
        # box entirely above the diagonal
        assert space.intersects_box((0, 5), (2, 9))
        # box entirely below the diagonal
        assert not space.intersects_box((5, 0), (9, 3))
        # box touching the diagonal only at equality: x0 == x1 not allowed
        assert not space.intersects_box((4, 4), (4, 4))
        assert ComparisonSpace(2, 0, "<=", 1).intersects_box((4, 4), (4, 4))

    def test_intersects_box_greater(self):
        space = ComparisonSpace(2, 0, ">", 1)
        assert space.intersects_box((5, 0), (9, 3))
        assert not space.intersects_box((0, 5), (2, 9))

    def test_exhaustive_against_brute_force(self):
        space = ComparisonSpace(2, 0, "<", 1)
        for x_lo in range(4):
            for x_hi in range(x_lo, 4):
                for y_lo in range(4):
                    for y_hi in range(y_lo, 4):
                        brute = any(
                            x < y
                            for x in range(x_lo, x_hi + 1)
                            for y in range(y_lo, y_hi + 1)
                        )
                        assert (
                            space.intersects_box((x_lo, y_lo), (x_hi, y_hi)) == brute
                        )


# ----------------------------------------------------------------------
# PredicateSpace and IntersectionSpace
# ----------------------------------------------------------------------
class TestComposites:
    def test_predicate_space(self):
        space = PredicateSpace(2, lambda p: (p[0] + p[1]) % 2 == 0)
        assert space.contains_point((1, 1))
        assert not space.contains_point((1, 2))
        assert space.intersects_box((0, 0), (0, 0))  # conservative
        assert space.bounding_box() is None

    def test_intersection_membership(self):
        space = IntersectionSpace(
            [QueryBox((0, 0), (5, 5)), ComparisonSpace(2, 0, "<", 1)]
        )
        assert space.contains_point((1, 3))
        assert not space.contains_point((3, 1))
        assert not space.contains_point((1, 6))

    def test_intersection_bounding_box(self):
        space = IntersectionSpace(
            [QueryBox((0, 2), (5, 9)), QueryBox((1, 0), (9, 7))]
        )
        assert space.bounding_box() == ((1, 2), (5, 7))

    def test_intersection_with_unbounded_part(self):
        space = IntersectionSpace(
            [QueryBox((1, 1), (4, 4)), ComparisonSpace(2, 0, "<", 1)]
        )
        assert space.bounding_box() == ((1, 1), (4, 4))

    def test_intersection_of_unbounded_only(self):
        space = IntersectionSpace([ComparisonSpace(2, 0, "<", 1)])
        assert space.bounding_box() is None

    def test_intersection_flattens(self):
        inner = IntersectionSpace([QueryBox((0, 0), (3, 3))])
        outer = IntersectionSpace([inner, QueryBox((1, 1), (5, 5))])
        assert len(outer.parts) == 2

    def test_intersection_rejects_empty_and_mixed_dims(self):
        with pytest.raises(ValueError):
            IntersectionSpace([])
        with pytest.raises(ValueError):
            IntersectionSpace([QueryBox((0,), (1,)), QueryBox((0, 0), (1, 1))])

    def test_intersects_box_is_conservative(self):
        space = IntersectionSpace(
            [QueryBox((0, 0), (9, 9)), ComparisonSpace(2, 0, "<", 1)]
        )
        assert space.intersects_box((0, 5), (3, 9))
        assert not space.intersects_box((5, 0), (9, 3))


@given(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
)
@settings(max_examples=200, deadline=None)
def test_box_membership_matches_definition(a, b, point):
    lo = tuple(min(x, y) for x, y in zip(a, b))
    hi = tuple(max(x, y) for x, y in zip(a, b))
    box = QueryBox(lo, hi)
    expected = all(l <= p <= h for p, l, h in zip(point, lo, hi))
    assert box.contains_point(point) == expected
