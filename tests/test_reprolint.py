"""Tests for ``tools.reprolint``: each rule fires on a seeded violation.

Every rule gets a minimal fixture that *must* be flagged and a fixed
variant that must pass — so the linter's guarantees are themselves under
test, and a refactor cannot silently neuter a rule.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

from tools.reprolint import (
    ALL_RULES,
    Violation,
    check_backend_parity,
    lint_paths,
    lint_source,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(violations: "list[Violation]") -> set[str]:
    return {violation.rule for violation in violations}


def lint(source: str, *, path: str = "module.py", hot_path: bool = False):
    return lint_source(textwrap.dedent(source), path, hot_path=hot_path)


# ----------------------------------------------------------------------
# R001: wall-clock time
# ----------------------------------------------------------------------
class TestR001WallClock:
    def test_time_time_flagged(self):
        found = lint(
            """
            import time

            def measure():
                return time.time()
            """
        )
        assert rules_of(found) == {"R001"}

    def test_perf_counter_attribute_flagged(self):
        found = lint("import time\nstart = time.perf_counter()\n")
        assert rules_of(found) == {"R001"}

    def test_from_time_import_flagged(self):
        found = lint("from time import perf_counter\n")
        assert rules_of(found) == {"R001"}

    def test_datetime_now_flagged(self):
        found = lint(
            """
            import datetime

            stamp = datetime.datetime.now()
            """
        )
        assert rules_of(found) == {"R001"}

    def test_date_today_flagged(self):
        found = lint("import datetime as dt\nday = dt.date.today()\n")
        assert rules_of(found) == {"R001"}

    def test_simulated_clock_passes(self):
        found = lint(
            """
            def measure(disk):
                return disk.clock
            """
        )
        assert found == []

    def test_time_sleep_passes(self):
        # sleep does not *read* the clock; only readers are banned
        found = lint("import time\ntime.sleep(0)\n")
        assert found == []


# ----------------------------------------------------------------------
# R002: per-tuple loops over page records in hot paths
# ----------------------------------------------------------------------
class TestR002HotPathLoops:
    LOOP = """
    def scan(page):
        out = []
        for record in page.records:
            out.append(record)
        return out
    """

    def test_for_loop_flagged_in_hot_path(self):
        found = lint(self.LOOP, hot_path=True)
        assert rules_of(found) == {"R002"}

    def test_same_loop_allowed_outside_hot_paths(self):
        assert lint(self.LOOP, hot_path=False) == []

    def test_hot_path_inferred_from_filename(self):
        found = lint_source(
            textwrap.dedent(self.LOOP), "src/repro/core/tetris.py"
        )
        assert rules_of(found) == {"R002"}

    def test_comprehension_flagged(self):
        found = lint(
            "def points(page):\n    return [r[1][0] for r in page.records]\n",
            hot_path=True,
        )
        assert rules_of(found) == {"R002"}

    def test_enumerate_flagged(self):
        found = lint(
            """
            def scan(page):
                for index, record in enumerate(page.records):
                    pass
            """,
            hot_path=True,
        )
        assert rules_of(found) == {"R002"}

    def test_kernel_call_passes(self):
        found = lint(
            """
            def scan(kernel, curve, space, page):
                return kernel.scan_page(curve, space, page, 0)
            """,
            hot_path=True,
        )
        assert found == []

    def test_indexing_selected_records_passes(self):
        # subscripting by kernel-selected indices is the sanctioned idiom
        found = lint(
            """
            def emit(kernel, space, page):
                records = page.records
                for index in kernel.filter_space_page(space, page):
                    yield records[index]
            """,
            hot_path=True,
        )
        assert found == []


# ----------------------------------------------------------------------
# R003: records mutation without version bump
# ----------------------------------------------------------------------
class TestR003VersionBump:
    def test_append_without_bump_flagged(self):
        found = lint(
            """
            def add(page, record):
                page.records.append(record)
            """
        )
        assert rules_of(found) == {"R003"}

    def test_append_with_bump_passes(self):
        found = lint(
            """
            def add(page, record):
                page.records.append(record)
                page.version += 1
            """
        )
        assert found == []

    def test_slice_assignment_without_bump_flagged(self):
        found = lint(
            """
            def truncate(page, cut):
                page.records = page.records[:cut]
            """
        )
        assert rules_of(found) == {"R003"}

    def test_del_without_bump_flagged(self):
        found = lint(
            """
            def remove(page, index):
                del page.records[index]
            """
        )
        assert rules_of(found) == {"R003"}

    def test_insort_without_bump_flagged(self):
        found = lint(
            """
            from bisect import insort

            def add(leaf, key, value):
                insort(leaf.records, (key, value))
            """
        )
        assert rules_of(found) == {"R003"}

    def test_pairing_is_per_function(self):
        # a bump in a *different* function does not excuse the mutation
        found = lint(
            """
            def mutate(page, record):
                page.records.append(record)

            def bump(page):
                page.version += 1
            """
        )
        assert rules_of(found) == {"R003"}

    def test_distinct_owners_tracked_separately(self):
        found = lint(
            """
            def move(left, right, record):
                left.records.append(record)
                right.records.pop()
                left.version += 1
            """
        )
        assert rules_of(found) == {"R003"}
        assert "right" in found[0].message

    def test_read_only_access_passes(self):
        found = lint(
            """
            def count(page):
                return len(page.records)
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R004: backend parity (cross-file)
# ----------------------------------------------------------------------
class TestR004BackendParity:
    BASE = """
    class KernelBackend:
        def encode_batch(self, curve, points):
            raise NotImplementedError

        def brand_new_kernel(self, data):
            raise NotImplementedError

        def _private_helper(self):
            pass
    """
    PURE_COMPLETE = """
    class PureBackend:
        def encode_batch(self, curve, points):
            return []

        def brand_new_kernel(self, data):
            return []
    """
    NUMPY_PARTIAL = """
    class FancyBackend:
        def encode_batch(self, curve, points):
            return []
    """

    def write_kernels(self, tmp_path, numpy_source):
        kernels = tmp_path / "kernels"
        kernels.mkdir()
        (kernels / "base.py").write_text(textwrap.dedent(self.BASE))
        (kernels / "pure.py").write_text(textwrap.dedent(self.PURE_COMPLETE))
        (kernels / "numpy_backend.py").write_text(textwrap.dedent(numpy_source))
        return kernels

    def test_missing_override_flagged(self, tmp_path):
        kernels = self.write_kernels(tmp_path, self.NUMPY_PARTIAL)
        found = check_backend_parity(kernels)
        assert rules_of(found) == {"R004"}
        assert "brand_new_kernel" in found[0].message
        assert "FancyBackend" in found[0].message

    def test_private_methods_not_required(self, tmp_path):
        kernels = self.write_kernels(tmp_path, self.PURE_COMPLETE)
        assert check_backend_parity(kernels) == []

    def test_lint_paths_discovers_kernels_dir(self, tmp_path):
        self.write_kernels(tmp_path, self.NUMPY_PARTIAL)
        found = lint_paths([tmp_path])
        assert "R004" in rules_of(found)


# ----------------------------------------------------------------------
# R005: bare asserts
# ----------------------------------------------------------------------
class TestR005BareAssert:
    def test_assert_flagged(self):
        found = lint(
            """
            def dispatch(table):
                assert table.kind == "ub"
                return table
            """
        )
        assert rules_of(found) == {"R005"}

    def test_explicit_raise_passes(self):
        found = lint(
            """
            def dispatch(table):
                if table.kind != "ub":
                    raise TypeError("need a UB table")
                return table
            """
        )
        assert found == []

    def test_require_instance_passes(self):
        found = lint(
            """
            from repro.invariants import require_instance

            def dispatch(table, UBTable):
                return require_instance(table, UBTable, "dispatch")
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R006: swallowed exceptions and policy-free retry loops
# ----------------------------------------------------------------------
class TestR006SwallowedExceptions:
    def test_bare_except_flagged(self):
        found = lint(
            """
            def load(store, page_id):
                try:
                    return store.read(page_id)
                except:
                    return None
            """
        )
        assert rules_of(found) == {"R006"}

    def test_except_exception_pass_flagged(self):
        found = lint(
            """
            def load(store, page_id):
                try:
                    return store.read(page_id)
                except Exception:
                    pass
            """
        )
        assert rules_of(found) == {"R006"}

    def test_except_base_exception_ellipsis_flagged(self):
        found = lint(
            """
            def load(store, page_id):
                try:
                    return store.read(page_id)
                except BaseException:
                    ...
            """
        )
        assert rules_of(found) == {"R006"}

    def test_except_exception_with_handling_passes(self):
        found = lint(
            """
            def load(store, page_id):
                try:
                    return store.read(page_id)
                except Exception as exc:
                    raise RuntimeError("load failed") from exc
            """
        )
        assert found == []

    def test_specific_exception_pass_passes(self):
        """Swallowing a *specific* error is an explicit, auditable choice."""
        found = lint(
            """
            def free_quietly(store, page_id):
                try:
                    store.free(page_id)
                except MissingPageError:
                    pass
            """
        )
        assert found == []

    def test_hand_rolled_retry_loop_flagged(self):
        found = lint(
            """
            def load(store, page_id):
                for _ in range(3):
                    try:
                        return store.read(page_id)
                    except TransientIOError:
                        continue
            """
        )
        assert rules_of(found) == {"R006"}

    def test_retry_loop_through_policy_passes(self):
        found = lint(
            """
            def load(store, page_id, policy):
                delays = policy.delays()
                while True:
                    try:
                        return store.read(page_id)
                    except TransientIOError:
                        delay = next(delays, None)
                        if delay is None:
                            raise
                        store.advance_clock(delay)
            """
        )
        assert found == []

    def test_transient_error_outside_loop_passes(self):
        """A one-shot catch is not a retry loop; nothing to police."""
        found = lint(
            """
            def probe(store, page_id):
                try:
                    return store.read(page_id)
                except TransientIOError:
                    return None
            """
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            """
            def load(store, page_id):
                try:
                    return store.read(page_id)
                except Exception:  # reprolint: allow(R006)
                    pass
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R007: disk mutation bypassing the WAL
# ----------------------------------------------------------------------
class TestR007WalBypass:
    def test_bare_disk_write_flagged(self):
        found = lint(
            """
            def persist(self, page):
                self.disk.write(page, category=self.category)
            """
        )
        assert rules_of(found) == {"R007"}

    def test_bare_disk_free_flagged(self):
        found = lint(
            """
            def drop(self, page_id):
                self.disk.free(page_id)
            """
        )
        assert rules_of(found) == {"R007"}

    def test_allocation_flagged(self):
        found = lint(
            """
            def grow(self):
                return self.disk.allocate_extent(64, 80)
            """
        )
        assert rules_of(found) == {"R007"}

    def test_wal_participating_function_passes(self):
        found = lint(
            """
            def persist(self, wal, page):
                wal.log_image(page)
                self.disk.write(page, category=self.category)
            """
        )
        assert found == []

    def test_active_wal_guard_passes(self):
        found = lint(
            """
            def allocate(self):
                page = self.disk.allocate(80)
                wal = active_wal(self.disk)
                if wal is not None:
                    wal.log_alloc(page)
                return page
            """
        )
        assert found == []

    def test_temp_category_exempt(self):
        """Sort-run spills are scratch I/O, not durable state."""
        found = lint(
            """
            def spill(self, page):
                self.disk.write(page, sequential=True, category="temp")
            """
        )
        assert found == []

    def test_wal_category_exempt(self):
        found = lint(
            """
            def force(self, page):
                self.disk.write(page, sequential=True, category="wal")
            """
        )
        assert found == []

    def test_storage_layer_exempt(self):
        """The storage package implements the machinery; R007 is for its
        consumers."""
        found = lint(
            """
            def persist(self, page):
                self.disk.write(page, category="data")
            """,
            path="src/repro/storage/buffer.py",
        )
        assert found == []

    def test_non_disk_owner_passes(self):
        found = lint(
            """
            def persist(self, page):
                self.store.write(page)
            """
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            """
            def persist(self, page):
                self.disk.write(page)  # reprolint: allow(R007)
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R008: disk reads bypassing the BufferPool/IOScheduler gate
# ----------------------------------------------------------------------
class TestR008UngatedDiskReads:
    def test_bare_disk_read_flagged(self):
        found = lint(
            """
            def fetch(self, page_id):
                return self.disk.read(page_id, category="data")
            """
        )
        assert rules_of(found) == {"R008"}

    def test_stacked_disk_owner_flagged(self):
        found = lint(
            """
            def fetch(self, page_id):
                return self.db.disk.read(page_id, sequential=True)
            """
        )
        assert rules_of(found) == {"R008"}

    def test_replica_category_exempt(self):
        """Repair traffic is infrastructure, not engine data access."""
        found = lint(
            """
            def heal(self, page_id):
                return self.disk.read(page_id, category="replica")
            """
        )
        assert found == []

    def test_wal_category_exempt(self):
        found = lint(
            """
            def replay(self, page_id):
                return self.disk.read(page_id, sequential=True, category="wal")
            """
        )
        assert found == []

    def test_storage_layer_exempt(self):
        """The pool and scheduler themselves must touch the disk."""
        found = lint(
            """
            def _fetch(self, page_id):
                return self.disk.read(page_id, category="data")
            """,
            path="src/repro/storage/buffer.py",
        )
        assert found == []

    def test_pool_read_passes(self):
        found = lint(
            """
            def fetch(self, page_id):
                return self.buffer.get(page_id, category="data")
            """
        )
        assert found == []

    def test_non_disk_owner_passes(self):
        found = lint(
            """
            def fetch(self, page_id):
                return self.store.read(page_id)
            """
        )
        assert found == []

    def test_peek_passes(self):
        """`peek` is unpriced in-memory inspection, not a disk read."""
        found = lint(
            """
            def inspect(self, page_id):
                return self.disk.peek(page_id)
            """
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            """
            def fetch(self, page_id):
                return self.disk.read(page_id)  # reprolint: allow(R008)
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# suppression, aggregation, CLI
# ----------------------------------------------------------------------
# R009: process/serialization machinery outside the sanctioned executors
# ----------------------------------------------------------------------
class TestR009IPCConfinement:
    def test_multiprocessing_import_flagged(self):
        found = lint("import multiprocessing\n", path="src/repro/core/tetris.py")
        assert rules_of(found) == {"R009"}

    def test_pickle_import_flagged(self):
        found = lint("import pickle\n", path="src/repro/storage/wal.py")
        assert rules_of(found) == {"R009"}

    def test_submodule_from_import_flagged(self):
        found = lint(
            "from concurrent.futures import ThreadPoolExecutor\n",
            path="src/repro/relational/table.py",
        )
        assert rules_of(found) == {"R009"}

    def test_shared_memory_from_import_flagged(self):
        found = lint(
            "from multiprocessing import shared_memory\n",
            path="src/repro/kernels/numpy_backend.py",
        )
        assert rules_of(found) == {"R009"}

    def test_parallel_executor_module_is_sanctioned(self):
        found = lint(
            "import multiprocessing\nimport pickle\n",
            path="src/repro/planner/parallel.py",
        )
        assert found == []

    def test_shm_module_is_sanctioned(self):
        found = lint(
            "from multiprocessing import shared_memory\n",
            path="src/repro/kernels/shm.py",
        )
        assert found == []

    def test_unrelated_import_passes(self):
        found = lint("import threading\nimport queue\n", path="src/repro/x.py")
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            "import pickle  # reprolint: allow(R009)\n",
            path="src/repro/core/tetris.py",
        )
        assert found == []


# ----------------------------------------------------------------------
# R014: shard isolation
# ----------------------------------------------------------------------
class TestR014ShardIsolation:
    def test_deep_import_flagged(self):
        found = lint(
            "from repro.shard.coordinator import ShardedDatabase\n",
            path="src/repro/planner/executor.py",
        )
        assert rules_of(found) == {"R014"}

    def test_plain_import_of_internals_flagged(self):
        found = lint(
            "import repro.shard.merge\n", path="src/repro/core/tetris.py"
        )
        assert rules_of(found) == {"R014"}

    def test_relative_deep_import_flagged(self):
        found = lint(
            "from ..shard.coordinator import ShardCopy\n",
            path="src/repro/planner/executor.py",
        )
        assert rules_of(found) == {"R014"}

    def test_facade_import_passes(self):
        found = lint(
            "from repro.shard import ShardedDatabase\n",
            path="src/repro/planner/executor.py",
        )
        assert found == []

    def test_type_checking_import_passes(self):
        found = lint(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from ..shard.coordinator import ShardedDatabase
            """,
            path="src/repro/invariants/sharding.py",
        )
        assert found == []

    def test_copy_engine_dereference_flagged(self):
        found = lint(
            """
            def poke(copy):
                return copy.db.clock
            """,
            path="src/repro/planner/executor.py",
        )
        assert rules_of(found) == {"R014"}

    def test_copies_chain_dereference_flagged(self):
        found = lint(
            """
            def poke(sdb):
                return sdb.shards[0].copies[1].disk
            """,
            path="tools/chaos/__init__.py",
        )
        assert rules_of(found) == {"R014"}

    def test_suffix_name_dereference_flagged(self):
        found = lint(
            """
            def poke(primary_copy):
                primary_copy.buffer.drop_all()
            """,
            path="src/repro/core/tetris.py",
        )
        assert rules_of(found) == {"R014"}

    def test_shard_package_is_exempt(self):
        found = lint(
            """
            def heal(copy, peer):
                page = peer.db.disk.peek(3)
                return copy.db.buffer.lift_quarantine(3)
            """,
            path="src/repro/shard/coordinator.py",
        )
        assert found == []

    def test_coordinator_api_use_passes(self):
        found = lint(
            """
            def run(sdb):
                sdb.kill_copy(1, 0, after_rows=10)
                return sdb.sorted_scan({"a1": (0, 9)}, "a2")
            """,
            path="tools/chaos/__init__.py",
        )
        assert found == []

    def test_unrelated_attribute_passes(self):
        found = lint(
            """
            def repair(slots):
                for copy in slots:
                    if copy.intact:
                        return list(copy.records)
            """,
            path="src/repro/storage/replica.py",
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            "from repro.shard.merge import merge_shard_streams"
            "  # reprolint: allow(R014)\n",
            path="src/repro/core/tetris.py",
        )
        assert found == []


# ----------------------------------------------------------------------
# R015: 2PC participant discipline
# ----------------------------------------------------------------------
class TestR015TxnParticipants:
    def test_direct_commit_participant_flagged(self):
        found = lint(
            """
            def sneak(sdb, pid):
                sdb.commit_participant(pid, "load#0")
            """,
            path="tools/chaos/__init__.py",
        )
        assert rules_of(found) == {"R015"}

    def test_every_mutator_flagged(self):
        found = lint(
            """
            def drive(sdb, pid, rows):
                sdb.begin_participant(pid, "g")
                sdb.load_participant(pid, rows)
                sdb.insert_participant(pid, rows)
                sdb.prepare_participant(pid, "g")
                sdb.abort_participant(pid, "g")
                sdb.recover_participant(pid)
            """,
            path="src/repro/planner/executor.py",
        )
        assert rules_of(found) == {"R015"}
        assert len(found) == 6

    def test_txn_package_is_exempt(self):
        found = lint(
            """
            def drive(sdb, pid, gid):
                sdb.prepare_participant(pid, gid)
                sdb.commit_participant(pid, gid)
            """,
            path="src/repro/txn/coordinator.py",
        )
        assert found == []

    def test_shard_package_is_exempt(self):
        found = lint(
            """
            def recover(self):
                return tuple(
                    self.recover_participant(pid)
                    for pid in self.participant_ids()
                )
            """,
            path="src/repro/shard/coordinator.py",
        )
        assert found == []

    def test_read_only_surface_passes(self):
        found = lint(
            """
            def observe(sdb):
                for pid in sdb.participant_ids():
                    print(sdb.participant_name(pid))
                    print(len(sdb.participant_wal_records(pid)))
                    print(sdb.wal_append_count(pid))
            """,
            path="tools/crashgrid/__init__.py",
        )
        assert found == []

    def test_suppression_applies(self):
        found = lint(
            'def f(sdb, pid):\n'
            '    sdb.abort_participant(pid, "g")'
            "  # reprolint: allow(R015)\n",
            path="tools/chaos/__init__.py",
        )
        assert found == []


# ----------------------------------------------------------------------
# R016: pushdown cover construction confined to the planner
# ----------------------------------------------------------------------
class TestR016PushdownConstruction:
    def test_direct_construction_flagged(self):
        found = lint(
            """
            from repro.core.query_space import IntervalUnionSpace

            space = IntervalUnionSpace(dim=0, intervals=((1, 5),))
            """,
            path="src/repro/core/tetris.py",
        )
        assert rules_of(found) == {"R016"}

    def test_qualified_construction_flagged(self):
        found = lint(
            """
            from repro.core import query_space

            space = query_space.IntervalUnionSpace(0, ((1, 5),))
            """,
            path="src/repro/relational/table.py",
        )
        assert rules_of(found) == {"R016"}

    def test_build_key_cover_call_flagged(self):
        found = lint(
            """
            from repro.planner.pushdown import build_key_cover

            cover = build_key_cover([1, 2, 3], budget=4)
            """,
            path="src/repro/tpcd/plans.py",
        )
        assert rules_of(found) == {"R016"}

    def test_planner_pushdown_is_exempt(self):
        found = lint(
            """
            def pushdown_space(keys, budget):
                cover = build_key_cover(keys, budget)
                return IntervalUnionSpace(0, cover.intervals)
            """,
            path="src/repro/planner/pushdown.py",
        )
        assert found == []

    def test_query_space_module_is_exempt(self):
        found = lint(
            """
            def intersect(self, other):
                return IntervalUnionSpace(self.dim, merged)
            """,
            path="src/repro/core/query_space.py",
        )
        assert found == []

    def test_isinstance_dispatch_passes(self):
        found = lint(
            """
            from repro.core.query_space import IntervalUnionSpace

            def filter_rows(space):
                if isinstance(space, IntervalUnionSpace):
                    return space.intervals
                return None
            """,
            path="src/repro/kernels/pure.py",
        )
        assert found == []

    def test_suppression(self):
        found = lint(
            "space = IntervalUnionSpace(0, ())  # reprolint: allow(R016)\n",
            path="src/repro/core/tetris.py",
        )
        assert found == []


# ----------------------------------------------------------------------
class TestDriver:
    def test_suppression_by_rule(self):
        found = lint("assert True  # reprolint: allow(R005)\n")
        assert found == []

    def test_blanket_suppression(self):
        found = lint("assert True  # reprolint: allow\n")
        assert found == []

    def test_suppression_of_other_rule_does_not_apply(self):
        found = lint("assert True  # reprolint: allow(R001)\n")
        assert rules_of(found) == {"R005"}

    def test_syntax_error_reported_not_raised(self):
        found = lint("def broken(:\n")
        assert rules_of(found) == {"E999"}

    def test_violation_format(self):
        violation = lint("assert True\n", path="pkg/mod.py")[0]
        assert str(violation).startswith("pkg/mod.py:1:0: R005 ")

    def test_lint_paths_on_directory(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        (tmp_path / "dirty.py").write_text("assert x\n")
        found = lint_paths([tmp_path])
        assert [Path(v.path).name for v in found] == ["dirty.py"]

    def test_main_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(dirty)]) == 1
        assert "R005" in capsys.readouterr().out
        assert main([str(clean)]) == 0
        assert main(["--list-rules"]) == 0
        listed = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in listed

    def test_cli_subprocess_nonzero_on_violation(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        result = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", str(dirty)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "R005" in result.stdout

    def test_repository_tree_is_clean(self):
        """The shipped engine passes its own linter (acceptance gate)."""
        assert lint_paths([REPO_ROOT / "src" / "repro"]) == []

# ----------------------------------------------------------------------
# R010-R013: interprocedural project rules (engine-driven)
# ----------------------------------------------------------------------
def lint_tree(tmp_path, source: str, name: str = "module.py"):
    """Write one fixture file and lint it with the full project pass."""
    (tmp_path / name).write_text(textwrap.dedent(source))
    return lint_paths([tmp_path])


class TestR010GuardedState:
    GUARDED = """\
        @guarded_by("_lock", "_items", "count")
        class Registry:
            def __init__(self):
                self._lock = tracked_lock("lock-a")
                self._items = []
                self.count = 0
        """

    def test_unlocked_mutation_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def add(self, item):
                self._items.append(item)
            """,
        )
        assert "R010" in rules_of(found)

    def test_lexically_locked_mutation_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def add(self, item):
                with self._lock:
                    self._items.append(item)
                    self.count += 1
            """,
        )
        assert "R010" not in rules_of(found)

    def test_helper_locked_by_every_caller_clean(self, tmp_path):
        """The interprocedural case: the lock is taken one frame up."""
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def add(self, item):
                with self._lock:
                    self._admit(item)

            def _admit(self, item):
                self._items.append(item)
                self.count += 1
            """,
        )
        assert "R010" not in rules_of(found)

    def test_helper_with_one_unlocked_caller_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def add(self, item):
                with self._lock:
                    self._admit(item)

            def add_fast(self, item):
                self._admit(item)

            def _admit(self, item):
                self._items.append(item)
            """,
        )
        assert "R010" in rules_of(found)

    def test_init_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, self.GUARDED)
        assert "R010" not in rules_of(found)

    def test_counter_augassign_outside_lock_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def bump(self):
                self.count += 1
            """,
        )
        assert "R010" in rules_of(found)

    def test_suppression_applies(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.GUARDED
            + """\

            def add(self, item):
                self._items.append(item)  # reprolint: allow(R010)
            """,
        )
        assert "R010" not in rules_of(found)


class TestR011LockOrder:
    # indented to match the fixture bodies so textwrap.dedent lines up
    ORDER = '            declare_lock_order("lock-a", "lock-b", "lock-c")\n'

    def test_lexical_inversion_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.ORDER
            + """\

            def inverted():
                a = tracked_lock("lock-a")
                b = tracked_lock("lock-b")
                with b:
                    with a:
                        pass
            """,
        )
        assert "R011" in rules_of(found)

    def test_declared_order_nesting_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.ORDER
            + """\

            def ordered():
                a = tracked_lock("lock-a")
                c = tracked_lock("lock-c")
                with a:
                    with c:
                        pass
            """,
        )
        assert "R011" not in rules_of(found)

    def test_interprocedural_inversion_flagged(self, tmp_path):
        """Holding lock-b, call a function that takes lock-a."""
        found = lint_tree(
            tmp_path,
            self.ORDER
            + """\

            def takes_a():
                a = tracked_lock("lock-a")
                with a:
                    pass

            def entry():
                b = tracked_lock("lock-b")
                with b:
                    takes_a()
            """,
        )
        assert "R011" in rules_of(found)

    def test_interprocedural_in_order_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.ORDER
            + """\

            def takes_b():
                b = tracked_lock("lock-b")
                with b:
                    pass

            def entry():
                a = tracked_lock("lock-a")
                with a:
                    takes_b()
            """,
        )
        assert "R011" not in rules_of(found)

    def test_double_declaration_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.ORDER + '            declare_lock_order("lock-z")\n',
        )
        assert "R011" in rules_of(found)

    def test_invertible_undeclared_pair_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            """\
            def one_way():
                x = tracked_lock("lock-x")
                y = tracked_lock("lock-y")
                with x:
                    with y:
                        pass

            def other_way():
                x = tracked_lock("lock-x")
                y = tracked_lock("lock-y")
                with y:
                    with x:
                        pass
            """,
        )
        assert "R011" in rules_of(found)


class TestR012ForkAfterSpawn:
    def test_fork_after_thread_spawn_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            """\
            import os  # threads below are never joined


            def run():
                worker = Thread(target=print)
                worker.start()
                os.fork()
            """,
        )
        assert "R012" in rules_of(found)

    def test_fork_before_threads_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            """\
            import os


            def run():
                os.fork()
                worker = Thread(target=print)
                worker.start()
            """,
        )
        assert "R012" not in rules_of(found)

    def test_exclusive_branches_clean(self, tmp_path):
        """The executor pattern: fork XOR threads, never both."""
        found = lint_tree(
            tmp_path,
            """\
            import os


            def run(use_fork):
                if use_fork:
                    os.fork()
                else:
                    with ThreadPoolExecutor(2) as pool:
                        pool.map(print, [1])
            """,
        )
        assert "R012" not in rules_of(found)

    def test_scoped_executor_joins_before_fork_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            """\
            import os


            def run():
                with ThreadPoolExecutor(2) as pool:
                    pool.map(print, [1])
                os.fork()
            """,
        )
        assert "R012" not in rules_of(found)

    def test_fork_inside_live_executor_block_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            """\
            import os


            def run():
                with ThreadPoolExecutor(2) as pool:
                    os.fork()
            """,
        )
        assert "R012" in rules_of(found)

    def test_interprocedural_spawn_then_fork_flagged(self, tmp_path):
        """The spawn happens in a helper; the fork in the caller."""
        found = lint_tree(
            tmp_path,
            """\
            import os


            def start_workers():
                worker = Thread(target=print)
                worker.start()


            def run():
                start_workers()
                os.fork()
            """,
        )
        assert "R012" in rules_of(found)


class TestR013ForkShipWhitelist:
    POOL_PREFIX = (
        "        import multiprocessing  # reprolint: allow(R009)\n"
        "\n"
        "\n"
    )

    def test_lambda_payload_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.POOL_PREFIX
            + """\
        def run():
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                pool.map(lambda x: x, [1])
        """,
        )
        assert "R013" in rules_of(found)

    def test_bound_method_payload_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.POOL_PREFIX
            + """\
        class Runner:
            def work(self, x):
                return x

            def run(self):
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(2) as pool:
                    pool.map(self.work, [1])
        """,
        )
        assert "R013" in rules_of(found)

    def test_unmarked_module_function_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.POOL_PREFIX
            + """\
        def work(x):
            return x


        def run():
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                pool.map(work, [1])
        """,
        )
        assert "R013" in rules_of(found)

    def test_fork_safe_module_function_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            self.POOL_PREFIX
            + """\
        @fork_safe
        def work(x):
            return x


        def run():
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                pool.map(work, [1])
        """,
        )
        assert "R013" not in rules_of(found)

    def test_thread_pool_closures_not_policed(self, tmp_path):
        """Thread pools share memory; closures are fine there."""
        found = lint_tree(
            tmp_path,
            """\
            def run():
                with ThreadPoolExecutor(2) as pool:
                    pool.map(lambda x: x, [1])
            """,
        )
        assert "R013" not in rules_of(found)


class TestOutputModes:
    def test_json_mode_structure(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert main(["--json", str(dirty)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 1
        [finding] = report["violations"]
        assert finding["rule"] == "R005"
        assert finding["line"] == 1
        assert finding["path"] == str(dirty)

    def test_json_mode_clean(self, tmp_path, capsys):
        import json

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["--json", str(clean)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"violations": [], "count": 0}

    def test_github_mode_annotations(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert main(["--github", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert f"::error file={dirty},line=1,col=0,title=reprolint R005::" in out
        assert "reprolint: 1 violation(s) found" in out

    def test_github_mode_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["--github", str(clean)]) == 0
        assert "reprolint: clean" in capsys.readouterr().out


class TestToolchainSelfLint:
    def test_tools_tree_is_clean(self):
        """The linter (and the chaos harness) pass the linter."""
        assert lint_paths([REPO_ROOT / "tools"]) == []
