"""Tests for the TPC-D substrate: generator, reference queries, plans."""

import datetime as dt

import pytest

from repro.relational.operators import FirstTupleTimer
from repro.relational.table import Database
from repro.tpcd import (
    Q3Params,
    Q4Params,
    Q6Params,
    TPCDConfig,
    generate,
    q3_lineitem_selectivity,
    q4_order_selectivity,
    q6_selectivity,
    reference_q3,
    reference_q4,
    reference_q6,
    shuffled,
)
from repro.tpcd import plans
from repro.tpcd.queries import (
    L_COMMITDATE,
    L_ORDERKEY,
    L_RECEIPTDATE,
    L_SHIPDATE,
    O_ORDERDATE,
    O_ORDERKEY,
)


@pytest.fixture(scope="module")
def data():
    return generate(TPCDConfig(scale_factor=0.1))


class TestGenerator:
    def test_row_counts(self, data):
        config = data.config
        assert len(data.customers) == config.customer_count == 150
        assert len(data.orders) == config.order_count == 1500
        # 1..7 lineitems per order, so about 4x on average
        ratio = len(data.lineitems) / len(data.orders)
        assert 3.0 <= ratio <= 5.0

    def test_deterministic(self, data):
        again = generate(TPCDConfig(scale_factor=0.1))
        assert again.lineitems == data.lineitems
        assert again.orders == data.orders
        assert again.customers == data.customers

    def test_seed_changes_data(self, data):
        other = generate(TPCDConfig(scale_factor=0.1, seed=1))
        assert other.lineitems != data.lineitems

    def test_keys_dense_and_unique(self, data):
        orderkeys = [o[O_ORDERKEY] for o in data.orders]
        assert orderkeys == list(range(1, len(orderkeys) + 1))
        custkeys = {c[0] for c in data.customers}
        assert custkeys == set(range(1, len(data.customers) + 1))

    def test_date_correlations(self, data):
        order_dates = {o[O_ORDERKEY]: o[O_ORDERDATE] for o in data.orders}
        for item in data.lineitems[:500]:
            orderdate = order_dates[item[L_ORDERKEY]]
            assert item[L_SHIPDATE] > orderdate
            assert item[L_COMMITDATE] > orderdate
            assert item[L_RECEIPTDATE] > item[L_SHIPDATE]

    def test_rows_encodable(self, data):
        """Every generated row must fit its schema's encoders."""
        lineitem_schema = data.lineitem_schema
        dims = ("l_orderkey", "l_shipdate", "l_discount", "l_quantity")
        for item in data.lineitems[:300]:
            point = lineitem_schema.encode_point(item, dims)
            assert all(v >= 0 for v in point)

    def test_shuffled_is_permutation(self, data):
        mixed = shuffled(data.orders)
        assert mixed != data.orders
        assert sorted(mixed) == sorted(data.orders)

    def test_selectivities_near_paper(self, data):
        assert q3_lineitem_selectivity(data) == pytest.approx(0.50, abs=0.05)
        assert q4_order_selectivity(data) == pytest.approx(0.035, abs=0.015)
        assert q6_selectivity(data) == pytest.approx(1 / 30, abs=0.02)


class TestReferenceQueries:
    def test_q3_reference_ordering(self, data):
        rows = reference_q3(data)
        revenues = [row[3] for row in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q4_reference_covers_all_priorities(self, data):
        rows = reference_q4(data)
        assert 1 <= len(rows) <= 5
        assert all(count > 0 for _, count in rows)

    def test_q6_reference_positive(self, data):
        assert reference_q6(data) > 0


class TestQ3Plans:
    @pytest.fixture(scope="class")
    def setup(self, data):
        db = Database(buffer_pages=128)
        return {
            "db": db,
            "heap": plans.build_lineitem_heap(db, data),
            "iot_ok": plans.build_lineitem_iot(db, data, "l_orderkey"),
            "iot_sd": plans.build_lineitem_iot(db, data, "l_shipdate"),
            "ub": plans.build_lineitem_ub_sort(db, data),
        }

    @pytest.mark.parametrize(
        "method,table_key",
        [
            ("tetris", "ub"),
            ("fts-sort", "heap"),
            ("iot-orderkey", "iot_ok"),
            ("iot-shipdate", "iot_sd"),
        ],
    )
    def test_all_methods_agree(self, data, setup, method, table_key):
        params = Q3Params()
        expected = sorted(
            (r for r in data.lineitems if r[L_SHIPDATE] > params.shipdate_after),
            key=lambda r: (r[L_ORDERKEY], r[1]),
        )
        setup["db"].reset_measurement()
        plan, _ = plans.q3_lineitem_access(method, setup["db"], setup[table_key], params)
        out = list(plan)
        assert [r[L_ORDERKEY] for r in out] == [r[L_ORDERKEY] for r in expected]
        assert sorted(out) == sorted(expected)

    def test_unknown_method_rejected(self, data, setup):
        with pytest.raises(ValueError):
            plans.q3_lineitem_access("magic", setup["db"], setup["heap"])

    def test_full_plan_tetris_matches_reference(self, data, setup):
        db = setup["db"]
        customer_ub = plans.build_customer_ub(db, data)
        order_ub = plans.build_order_ub(db, data)
        params = Q3Params()
        lineitem_plan, _ = plans.q3_lineitem_access("tetris", db, setup["ub"], params)
        plan = plans.q3_full_plan(
            db, customer_ub, order_ub, lineitem_plan, params, use_tetris=True
        )
        got = list(plan)
        expected = reference_q3(data, params)
        assert len(got) == len(expected)
        assert {r[0] for r in got} == {r[0] for r in expected}
        assert [r[3] for r in got] == [r[3] for r in expected]

    def test_full_plan_classic_matches_reference(self, data, setup):
        db = setup["db"]
        customer_heap = plans.build_customer_heap(db, data)
        order_heap = plans.build_order_heap(db, data)
        params = Q3Params()
        lineitem_plan, _ = plans.q3_lineitem_access("fts-sort", db, setup["heap"], params)
        plan = plans.q3_full_plan(
            db, customer_heap, order_heap, lineitem_plan, params, use_tetris=False
        )
        got = list(plan)
        expected = reference_q3(data, params)
        assert len(got) == len(expected)
        assert [r[3] for r in got] == [r[3] for r in expected]


class TestQ4Plans:
    @pytest.fixture(scope="class")
    def setup(self, data):
        db = Database(buffer_pages=128)
        return {
            "db": db,
            "heap": plans.build_order_heap(db, data),
            "iot_ok": plans.build_order_iot(db, data, "o_orderkey"),
            "iot_od": plans.build_order_iot(db, data, "o_orderdate"),
            "ub": plans.build_order_ub(db, data),
        }

    @pytest.mark.parametrize(
        "method,table_key",
        [
            ("tetris", "ub"),
            ("fts-sort", "heap"),
            ("iot-orderkey", "iot_ok"),
            ("iot-orderdate", "iot_od"),
        ],
    )
    def test_all_methods_agree(self, data, setup, method, table_key):
        params = Q4Params()
        expected = sorted(
            (
                o
                for o in data.orders
                if params.orderdate_from <= o[O_ORDERDATE] < params.orderdate_until
            ),
            key=lambda o: o[O_ORDERKEY],
        )
        setup["db"].reset_measurement()
        plan, _ = plans.q4_order_access(method, setup["db"], setup[table_key], params)
        assert list(plan) == expected

    def test_full_plan_matches_reference(self, data, setup):
        db = setup["db"]
        lineitem_ub = plans.build_lineitem_ub_q4(db, data)
        params = Q4Params()
        order_plan, _ = plans.q4_order_access("tetris", db, setup["ub"], params)
        plan = plans.q4_full_plan(db, order_plan, lineitem_ub, params)
        assert list(plan) == reference_q4(data, params)

    def test_unknown_method_rejected(self, data, setup):
        with pytest.raises(ValueError):
            plans.q4_order_access("magic", setup["db"], setup["heap"])


class TestQ6Plans:
    @pytest.fixture(scope="class")
    def setup(self, data):
        db = Database(buffer_pages=128)
        return {
            "db": db,
            "heap": plans.build_lineitem_heap(db, data),
            "ub": plans.build_lineitem_ub_range(db, data),
            "iot_sd": plans.build_lineitem_iot(db, data, "l_shipdate"),
            "iot_di": plans.build_lineitem_iot(db, data, "l_discount"),
            "iot_qt": plans.build_lineitem_iot(db, data, "l_quantity"),
        }

    @pytest.mark.parametrize(
        "method,table_key",
        [
            ("tetris", "ub"),
            ("fts", "heap"),
            ("iot-shipdate", "iot_sd"),
            ("iot-discount", "iot_di"),
            ("iot-quantity", "iot_qt"),
        ],
    )
    def test_all_methods_compute_same_sum(self, data, setup, method, table_key):
        expected = reference_q6(data)
        setup["db"].reset_measurement()
        plan = plans.q6_full_plan(method, setup["db"], setup[table_key])
        ((total,),) = [tuple(r) for r in plan]
        assert total == expected

    def test_tetris_reads_fewer_pages_than_fts(self, data, setup):
        db = setup["db"]
        db.reset_measurement()
        before = db.disk.snapshot()
        list(plans.q6_restriction_plan("tetris", db, setup["ub"]))
        tetris_reads = (db.disk.snapshot() - before).pages_read
        db.reset_measurement()
        before = db.disk.snapshot()
        list(plans.q6_restriction_plan("fts", db, setup["heap"]))
        fts_reads = (db.disk.snapshot() - before).pages_read
        assert tetris_reads < fts_reads

    def test_unknown_method_rejected(self, data, setup):
        with pytest.raises(ValueError):
            plans.q6_restriction_plan("magic", setup["db"], setup["heap"])


class TestParamsProperties:
    def test_q6_until_derived(self):
        params = Q6Params(shipdate_from=dt.date(1994, 1, 1), shipdate_days=365)
        assert params.shipdate_until == dt.date(1995, 1, 1)

    def test_q4_defaults_are_three_months(self):
        params = Q4Params()
        assert (params.orderdate_until - params.orderdate_from).days == 90
