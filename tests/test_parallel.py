"""Tests for slab-parallel Tetris execution: slab planning and the
bit-identical-stream contract across worker counts, sort directions,
composite orders and non-box query spaces.

The CI parallel matrix sets ``REPRO_PARALLEL_WORKERS`` (2 and 4); the
identity tests honour it so both pool widths are exercised.
"""

import multiprocessing
import os
import random

import pytest

from repro import kernels
from repro.core.query_space import QueryBox
from repro.planner import (
    ExecutorFallbackEvent,
    ParallelScanResult,
    SweepSlab,
    parallel_tetris_scan,
    plan_slabs,
    register_fallback_observer,
    select_executor,
    unregister_fallback_observer,
)
from repro.planner import parallel as parallel_module
from repro.relational import Attribute, Database, IntEncoder, Schema

#: pool width under test — the CI matrix sweeps 2 and 4
WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))

SEED = 20260806


def make_table(rows=800, seed=SEED):
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(seed)
    data = [(rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)]
    db = Database(buffer_pages=64)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    db.buffer.flush()
    db.reset_measurement()
    return ub


# ----------------------------------------------------------------------
# slab planning
# ----------------------------------------------------------------------
class TestPlanSlabs:
    def test_slabs_are_disjoint_contiguous_and_cover_the_range(self):
        box = QueryBox((0, 100), (1023, 900))
        slabs = plan_slabs(box, 1, (1023, 1023), 4)
        assert slabs[0].lo == 100
        assert slabs[-1].hi == 900
        for earlier, later in zip(slabs, slabs[1:]):
            assert later.lo == earlier.hi + 1
        assert sum(slab.width for slab in slabs) == 801

    def test_narrow_range_yields_fewer_slabs(self):
        box = QueryBox((0, 10), (1023, 12))
        slabs = plan_slabs(box, 1, (1023, 1023), 8)
        assert len(slabs) == 3
        assert [(slab.lo, slab.hi) for slab in slabs] == [(10, 10), (11, 11), (12, 12)]

    def test_empty_box_yields_no_slabs(self):
        box = QueryBox((5, 500), (3, 600))  # lo > hi on dim 0
        assert plan_slabs(box, 1, (1023, 1023), 4) == []

    def test_single_slab_is_the_whole_range(self):
        box = QueryBox((0, 0), (1023, 1023))
        (slab,) = plan_slabs(box, 0, (1023, 1023), 1)
        assert (slab.lo, slab.hi) == (0, 1023)

    def test_invalid_slab_count_rejected(self):
        box = QueryBox((0, 0), (1023, 1023))
        with pytest.raises(ValueError):
            plan_slabs(box, 0, (1023, 1023), 0)

    def test_slab_indices_are_sequential(self):
        box = QueryBox((0, 0), (1023, 1023))
        slabs = plan_slabs(box, 0, (1023, 1023), 4)
        assert [slab.index for slab in slabs] == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# the contract: concatenated slab streams == the serial stream, bit for bit
# ----------------------------------------------------------------------
class TestBitIdenticalStreams:
    @pytest.fixture(scope="class")
    def table(self):
        return make_table()

    def test_restricted_ascending(self, table):
        serial = list(table.tetris_scan({"a1": (100, 900)}, "a2"))
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS
        )
        assert result.rows == serial
        assert sum(result.per_slab_counts) == len(serial)

    def test_unrestricted_full_space(self, table):
        serial = list(table.tetris_scan(None, "a1"))
        result = parallel_tetris_scan(table, None, "a1", workers=WORKERS)
        assert result.rows == serial

    def test_descending(self, table):
        serial = list(
            table.tetris_scan({"a1": (100, 900)}, "a2", descending=True)
        )
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS, descending=True
        )
        assert result.rows == serial

    def test_composite_sort_order(self, table):
        serial = list(table.tetris_scan({"a1": (100, 900)}, ("a2", "a1")))
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, ("a2", "a1"), workers=WORKERS
        )
        assert result.rows == serial

    def test_sweep_strategy(self, table):
        serial = list(
            table.tetris_scan({"a1": (100, 900)}, "a2", strategy="sweep")
        )
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS, strategy="sweep"
        )
        assert result.rows == serial

    def test_half_space_query(self, table):
        space = table.comparison_space("a1", "<", "a2")
        serial = list(table.tetris_scan(space, "a2"))
        result = parallel_tetris_scan(table, space, "a2", workers=WORKERS)
        assert result.rows == serial

    def test_more_slabs_than_workers(self, table):
        serial = list(table.tetris_scan({"a1": (100, 900)}, "a2"))
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS, slabs=7
        )
        assert result.rows == serial
        assert len(result.slabs) == 7

    def test_single_worker_runs_inline(self, table):
        serial = list(table.tetris_scan({"a1": (100, 900)}, "a2"))
        result = parallel_tetris_scan(table, {"a1": (100, 900)}, "a2", workers=1)
        assert result.rows == serial
        assert result.workers == 1

    def test_empty_query_yields_empty_result(self, table):
        result = parallel_tetris_scan(
            table, {"a1": (900, 100)}, "a2", workers=WORKERS
        )
        assert result.rows == []
        assert result.slabs == []

    def test_worker_counts_agree_with_each_other(self, table):
        streams = [
            parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=workers
            ).rows
            for workers in (1, 2, 4)
        ]
        assert streams[0] == streams[1] == streams[2]


# ----------------------------------------------------------------------
# result surface and validation
# ----------------------------------------------------------------------
class TestResultSurface:
    def test_result_iterates_and_measures(self):
        result = ParallelScanResult(
            slabs=[SweepSlab(0, 0, 10)],
            per_slab_counts=[2],
            rows=[((1,), "x"), ((2,), "y")],
            workers=1,
        )
        assert len(result) == 2
        assert list(result) == result.rows

    def test_slab_width(self):
        assert SweepSlab(0, 10, 19).width == 10

    def test_invalid_worker_count_rejected(self):
        table = make_table(rows=50)
        with pytest.raises(ValueError):
            parallel_tetris_scan(table, None, "a1", workers=0)

    def test_empty_sort_attrs_rejected(self):
        table = make_table(rows=50)
        with pytest.raises(ValueError):
            parallel_tetris_scan(table, None, (), workers=2)


# ----------------------------------------------------------------------
# executor selection policy
# ----------------------------------------------------------------------
class TestSelectExecutor:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            select_executor("gpu", "numpy", 4)

    def test_single_worker_auto_is_inline_without_event(self):
        # auto deciding on inline for one worker is policy, not a fallback
        assert select_executor("auto", "numpy", 1) == ("inline", None)

    @pytest.mark.parametrize("requested", ("threads", "fork"))
    def test_single_worker_explicit_request_emits_event(self, requested):
        selected, event = select_executor(requested, "python", 1)
        assert selected == "inline"
        assert event is not None
        assert (event.requested, event.selected) == (requested, "inline")
        assert "2 workers" in event.reason

    def test_explicit_inline(self):
        assert select_executor("inline", "numpy", 4) == ("inline", None)

    def test_threads_always_honoured(self):
        assert select_executor("threads", "python", 4) == ("threads", None)

    def test_auto_picks_threads_for_numpy(self):
        assert select_executor("auto", "numpy", 4) == ("threads", None)

    def test_auto_picks_fork_for_pure_python(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        assert select_executor("auto", "python", 4) == ("fork", None)

    def test_fork_unavailable_degrades_with_event(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        selected, event = select_executor("fork", "python", 4)
        assert selected == "inline"
        assert event is not None
        assert event.requested == "fork"
        assert event.selected == "inline"
        assert "fork" in event.describe()

    def test_auto_without_fork_degrades_with_event(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        selected, event = select_executor("auto", "python", 4)
        assert selected == "inline"
        assert event is not None and event.requested == "auto"


# ----------------------------------------------------------------------
# the parity contract: every executor yields the serial stream
# ----------------------------------------------------------------------
EXECUTORS = ("inline", "threads", "fork")
BACKENDS = tuple(kernels.available_backends())


class TestExecutorParity:
    @pytest.fixture(scope="class")
    def table(self):
        return make_table()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_stream_bit_identical_to_serial(self, table, backend, executor):
        if executor == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        with kernels.use_backend(backend):
            serial = list(table.tetris_scan({"a1": (100, 900)}, "a2"))
            result = parallel_tetris_scan(
                table,
                {"a1": (100, 900)},
                "a2",
                workers=WORKERS,
                executor=executor,
            )
        assert result.rows == serial
        assert result.executor == executor

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_descending_sweep_parity_on_threads(self, table, backend):
        with kernels.use_backend(backend):
            serial = list(
                table.tetris_scan(
                    {"a1": (100, 900)}, "a2", descending=True, strategy="sweep"
                )
            )
            result = parallel_tetris_scan(
                table,
                {"a1": (100, 900)},
                "a2",
                workers=WORKERS,
                descending=True,
                strategy="sweep",
                executor="threads",
            )
        assert result.rows == serial

    def test_env_var_selects_executor(self, table, monkeypatch):
        monkeypatch.setenv(parallel_module.EXECUTOR_ENV_VAR, "threads")
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS
        )
        assert result.executor == "threads"

    def test_single_slab_downgrades_to_inline(self, table):
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=4, slabs=1, executor="threads"
        )
        assert result.executor == "inline"
        assert len(result.slabs) == 1


# ----------------------------------------------------------------------
# serialization accounting: zero-copy means zero bytes
# ----------------------------------------------------------------------
class TestSerializationAccounting:
    @pytest.fixture(scope="class")
    def table(self):
        return make_table()

    def test_not_measured_by_default(self, table):
        result = parallel_tetris_scan(
            table, {"a1": (100, 900)}, "a2", workers=WORKERS
        )
        assert result.serialized_bytes_per_slab is None

    @pytest.mark.parametrize("executor", ("inline", "threads"))
    def test_zero_copy_executors_ship_zero_bytes(self, table, executor):
        result = parallel_tetris_scan(
            table,
            {"a1": (100, 900)},
            "a2",
            workers=WORKERS,
            executor=executor,
            measure_serialization=True,
        )
        assert result.serialized_bytes_per_slab == [0] * len(result.slabs)

    def test_fork_ships_only_result_rows(self, table):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        serial = list(table.tetris_scan({"a1": (100, 900)}, "a2"))
        result = parallel_tetris_scan(
            table,
            {"a1": (100, 900)},
            "a2",
            workers=WORKERS,
            executor="fork",
            measure_serialization=True,
        )
        assert result.rows == serial
        assert result.executor == "fork"
        assert len(result.serialized_bytes_per_slab) == len(result.slabs)
        # pages are inherited copy-on-write (and staged in shm on the
        # NumPy backend) — the transport ships result rows only
        assert all(size >= 0 for size in result.serialized_bytes_per_slab)


# ----------------------------------------------------------------------
# fallback events: downgrades are structured, never silent
# ----------------------------------------------------------------------
class TestFallbackEvents:
    def test_fallback_surfaces_on_result_and_observer(self, monkeypatch):
        table = make_table(rows=200)
        monkeypatch.setattr(
            parallel_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=WORKERS, executor="fork"
            )
        finally:
            unregister_fallback_observer(seen.append)
        assert result.executor == "inline"
        assert len(result.fallbacks) == 1
        event = result.fallbacks[0]
        assert isinstance(event, ExecutorFallbackEvent)
        assert (event.requested, event.selected) == ("fork", "inline")
        assert seen == [event]
        # the downgraded run still honours the stream contract
        assert result.rows == list(table.tetris_scan({"a1": (100, 900)}, "a2"))

    def test_single_worker_explicit_request_emits_one_event(self):
        table = make_table(rows=200)
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=1, executor="threads"
            )
        finally:
            unregister_fallback_observer(seen.append)
        assert result.executor == "inline"
        assert len(result.fallbacks) == 1
        event = result.fallbacks[0]
        assert (event.requested, event.selected) == ("threads", "inline")
        assert "at least 2 workers" in event.reason
        assert seen == [event]

    def test_single_slab_explicit_request_emits_one_event(self):
        table = make_table(rows=200)
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table,
                {"a1": (100, 900)},
                "a2",
                workers=WORKERS,
                slabs=1,
                executor="threads",
            )
        finally:
            unregister_fallback_observer(seen.append)
        assert result.executor == "inline"
        assert len(result.fallbacks) == 1
        event = result.fallbacks[0]
        assert event.reason == "the query planned a single sweep slab"
        assert seen == [event]

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="no fork start method on this platform",
    )
    def test_shm_staging_failure_emits_one_event(self, monkeypatch):
        if kernels.get_backend().name != "numpy":
            pytest.skip("shm staging only runs on the numpy backend")
        table = make_table(rows=200)

        class ExplodingStore:
            def __init__(self, label=""):
                raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(
            parallel_module.shm, "SharedColumnStore", ExplodingStore
        )
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=WORKERS, executor="fork"
            )
        finally:
            unregister_fallback_observer(seen.append)
        # the scan still ran on the fork pool, rebuilding columns from COW
        assert result.executor == "fork"
        assert len(result.fallbacks) == 1
        event = result.fallbacks[0]
        assert (event.requested, event.selected) == ("fork+shm", "fork")
        assert "shared-memory column staging failed" in event.reason
        assert "no space left on /dev/shm" in event.reason
        assert seen == [event]
        assert result.rows == list(table.tetris_scan({"a1": (100, 900)}, "a2"))

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="no fork start method on this platform",
    )
    def test_numpy_missing_for_shm_emits_one_event(self, monkeypatch):
        if kernels.get_backend().name != "numpy":
            pytest.skip("shm staging only runs on the numpy backend")
        table = make_table(rows=200)
        monkeypatch.setattr(parallel_module.shm, "np", None)
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=WORKERS, executor="fork"
            )
        finally:
            unregister_fallback_observer(seen.append)
        assert result.executor == "fork"
        assert len(result.fallbacks) == 1
        event = result.fallbacks[0]
        assert (event.requested, event.selected) == ("fork+shm", "fork")
        assert "NumPy is unavailable" in event.reason
        assert seen == [event]
        assert result.rows == list(table.tetris_scan({"a1": (100, 900)}, "a2"))

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="no fork start method on this platform",
    )
    def test_clean_fork_run_emits_no_events(self):
        table = make_table(rows=200)
        seen = []
        register_fallback_observer(seen.append)
        try:
            result = parallel_tetris_scan(
                table, {"a1": (100, 900)}, "a2", workers=WORKERS, executor="fork"
            )
        finally:
            unregister_fallback_observer(seen.append)
        assert result.executor == "fork"
        assert result.fallbacks == ()
        assert seen == []

    def test_observer_exceptions_after_unregister_cannot_fire(self):
        # unregister removes by identity-equality of the bound method
        events = []
        register_fallback_observer(events.append)
        unregister_fallback_observer(events.append)
        parallel_module._emit_fallback(
            ExecutorFallbackEvent("threads", "inline", "test", "pure", 1)
        )
        assert events == []

    def test_unregister_unknown_observer_is_noop(self):
        unregister_fallback_observer(lambda event: None)

    def test_result_surface_defaults(self):
        result = ParallelScanResult(
            slabs=[], per_slab_counts=[], rows=[], workers=1
        )
        assert result.executor == "inline"
        assert result.fallbacks == ()
        assert result.serialized_bytes_per_slab is None
