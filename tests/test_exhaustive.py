"""Exhaustive small-universe verification.

Inserts *every* point of a small universe (and random multisets of it)
and checks every access path against brute force for a systematic grid
of query boxes — the strongest correctness evidence short of a proof,
complementing the randomized hypothesis suites.
"""

import itertools
import random

import pytest

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, SimulatedDisk


def full_universe_tree(bits, page_capacity=3):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace(bits), page_capacity=page_capacity)
    points = list(itertools.product(*[range(1 << b) for b in bits]))
    for index, point in enumerate(points):
        tree.insert(point, index)
    return tree, points


def all_boxes(side):
    for x_lo in range(side):
        for x_hi in range(x_lo, side):
            for y_lo in range(side):
                for y_hi in range(y_lo, side):
                    yield (x_lo, y_lo), (x_hi, y_hi)


class TestExhaustive2D:
    @pytest.fixture(scope="class")
    def world(self):
        return full_universe_tree((2, 2))

    def test_every_box_range_query(self, world):
        tree, points = world
        for lo, hi in all_boxes(4):
            box = QueryBox(lo, hi)
            got = sorted(p for p, _ in tree.range_query(box))
            expected = sorted(p for p in points if box.contains_point(p))
            assert got == expected, (lo, hi)

    @pytest.mark.parametrize("strategy", ["sweep", "eager"])
    @pytest.mark.parametrize("dim", [0, 1])
    def test_every_box_tetris(self, world, strategy, dim):
        tree, points = world
        for lo, hi in all_boxes(4):
            box = QueryBox(lo, hi)
            out = [p for p, _ in tetris_sorted(tree, box, dim, strategy=strategy)]
            expected = sorted(
                (p for p in points if box.contains_point(p)),
                key=lambda p: (p[dim], p[1 - dim]),
            )
            assert sorted(out) == sorted(expected), (lo, hi)
            values = [p[dim] for p in out]
            assert values == sorted(values), (lo, hi)

    def test_every_box_descending(self, world):
        tree, points = world
        for lo, hi in all_boxes(4):
            box = QueryBox(lo, hi)
            out = [p for p, _ in tetris_sorted(tree, box, 0, descending=True)]
            values = [p[0] for p in out]
            assert values == sorted(values, reverse=True), (lo, hi)
            assert len(out) == sum(1 for p in points if box.contains_point(p))


class TestExhaustiveUnequalBits:
    def test_8x2_universe(self):
        tree, points = full_universe_tree((3, 1))
        for x_lo in range(8):
            for x_hi in range(x_lo, 8):
                for y_lo in range(2):
                    for y_hi in range(y_lo, 2):
                        box = QueryBox((x_lo, y_lo), (x_hi, y_hi))
                        got = sorted(p for p, _ in tree.range_query(box))
                        expected = sorted(
                            p for p in points if box.contains_point(p)
                        )
                        assert got == expected


class TestExhaustiveMultiset:
    """Random multisets (duplicates!) of a small universe, all boxes."""

    @pytest.mark.parametrize("seed", range(3))
    def test_duplicate_heavy_workload(self, seed):
        rng = random.Random(seed)
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 128), ZSpace((2, 2)), page_capacity=2)
        points = [
            (rng.randrange(4), rng.randrange(4)) for _ in range(60)
        ]  # ~4 copies of each cell on average
        for index, point in enumerate(points):
            tree.insert(point, index)
        tree.check_invariants()
        for lo, hi in all_boxes(4):
            box = QueryBox(lo, hi)
            got = sorted(tree.range_query(box))
            expected = sorted(
                (p, i) for i, p in enumerate(points) if box.contains_point(p)
            )
            assert got == expected, (lo, hi)
            out = list(tetris_sorted(tree, box, 1))
            assert len(out) == len(expected)
            values = [p[1] for p, _ in out]
            assert values == sorted(values)


class TestExhaustive3D:
    def test_3d_universe_sampled_boxes(self):
        tree, points = full_universe_tree((2, 2, 2), page_capacity=4)
        rng = random.Random(9)
        for _ in range(60):
            lo = tuple(rng.randrange(4) for _ in range(3))
            hi = tuple(rng.randrange(l, 4) for l in lo)
            box = QueryBox(lo, hi)
            got = sorted(p for p, _ in tree.range_query(box))
            expected = sorted(p for p in points if box.contains_point(p))
            assert got == expected
            for dim in range(3):
                out = [p for p, _ in tetris_sorted(tree, box, dim)]
                values = [p[dim] for p in out]
                assert values == sorted(values)
                assert len(out) == len(expected)
