"""Deterministic concurrency sanitizer tests (``repro.invariants.sanitizer``).

The sanitizer is the runtime half of the concurrency toolchain: reprolint
R010–R013 prove what the call graph can see statically, and the vector-clock
race detector plus the lock-order graph catch everything else at runtime when
``REPRO_CHECKS=1``.  Every racy interleaving here is driven by *virtual*
actors from a single OS thread under a seeded schedule, so each violation is
a pure function of the seed: run the same seed twice and the same violation
fires at the same step with the same report.
"""

from __future__ import annotations

import random

import pytest

from repro.invariants import checks
from repro.invariants.sanitizer import (
    GLOBAL_LOCK_ORDER,
    LockOrderViolation,
    RaceViolation,
    TrackedLock,
    actor,
    current_actor,
    declare_lock_order,
    declared_lock_order,
    guarded_by,
    note_access,
    reset_sanitizer,
    sanitizer_counters,
    tracked_lock,
)


@pytest.fixture()
def armed():
    """Arm the invariant gate and restore global sanitizer state after."""
    reset_sanitizer()
    with checks():
        yield
    reset_sanitizer()
    declare_lock_order(*GLOBAL_LOCK_ORDER)


@guarded_by("_lock", "entries")
class SharedMap:
    """A tiny guarded map mirroring the engine's registry shape."""

    def __init__(self) -> None:
        self._lock = tracked_lock("map-lock")
        self.entries: dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        with self._lock:
            note_access(self, "entries")
            self.entries[key] = value

    def put_unguarded(self, key: str, value: int) -> None:
        # Deliberately skips self._lock: the injected bug under test.
        note_access(self, "entries")
        self.entries[key] = value

    def get(self, key: str) -> int | None:
        with self._lock:
            note_access(self, "entries", write=False)
            return self.entries.get(key)


# ----------------------------------------------------------------------
# seeded schedules
# ----------------------------------------------------------------------
def _drive_lock_schedule(seed: int, steps: int = 64) -> tuple[int, str]:
    """Acquire random nested lock pairs until the sanitizer objects.

    Returns ``(step, message)`` for the first violation; the schedule is
    a pure function of the seed, so both are too.
    """
    declare_lock_order("alpha", "beta", "gamma")
    locks = {
        "alpha": tracked_lock("alpha"),
        "beta": tracked_lock("beta"),
        "gamma": tracked_lock("gamma"),
    }
    rng = random.Random(seed)
    for step in range(steps):
        outer, inner = rng.sample(sorted(locks), 2)
        try:
            with locks[outer]:
                with locks[inner]:
                    pass
        except LockOrderViolation as error:
            return step, str(error)
    raise AssertionError("seeded schedule never inverted the lock order")


def _drive_race_schedule(seed: int, steps: int = 64) -> tuple[int, str]:
    """Two virtual actors hammer one guarded map; one path skips the lock.

    Each step the seeded scheduler picks an actor and (rarely) the buggy
    unguarded mutation.  The first unordered conflicting pair raises; the
    step index and report are a pure function of the seed.
    """
    shared = SharedMap()
    rng = random.Random(seed)
    for step in range(steps):
        name = rng.choice(["scan-worker", "evict-worker"])
        buggy = rng.random() < 0.25
        try:
            with actor(name):
                if buggy:
                    shared.put_unguarded("k", step)
                else:
                    shared.put("k", step)
        except RaceViolation as error:
            return step, str(error)
    raise AssertionError("seeded schedule never raced on the shared map")


# ----------------------------------------------------------------------
# lock-order detection
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_declared_inversion_raises_with_both_stacks(self, armed):
        declare_lock_order("alpha", "beta")
        alpha = tracked_lock("alpha")
        beta = tracked_lock("beta")
        with pytest.raises(LockOrderViolation) as exc:
            with beta:
                with alpha:
                    pass
        message = str(exc.value)
        assert "lock-order inversion" in message
        assert "('alpha', 'beta')" in message
        assert "'beta' acquired at:" in message
        assert "'alpha' requested at:" in message

    def test_declared_order_nesting_is_clean(self, armed):
        declare_lock_order("alpha", "beta")
        alpha = tracked_lock("alpha")
        beta = tracked_lock("beta")
        with alpha:
            with beta:
                pass
        assert sanitizer_counters()["order_checks"] == 1

    def test_undeclared_inversion_caught_by_cycle_graph(self, armed):
        declare_lock_order()  # nothing declared: only the graph can catch it
        first = tracked_lock("undeclared-a")
        second = tracked_lock("undeclared-b")
        with first:
            with second:
                pass
        with pytest.raises(LockOrderViolation) as exc:
            with second:
                with first:
                    pass
        message = str(exc.value)
        assert "lock-order cycle" in message
        assert "earlier 'undeclared-a' -> 'undeclared-b' nesting:" in message
        assert "current 'undeclared-b' -> 'undeclared-a' nesting:" in message

    def test_inversion_raises_before_blocking(self, armed):
        # The order check runs BEFORE the acquire: the violating thread
        # never touches the underlying RLock, so nothing deadlocks and
        # the outer lock is still cleanly releasable afterwards.
        declare_lock_order("alpha", "beta")
        alpha = tracked_lock("alpha")
        beta = tracked_lock("beta")
        with beta:
            with pytest.raises(LockOrderViolation):
                alpha.acquire()
        assert not alpha.held_by_current_thread()
        assert not beta.held_by_current_thread()
        # Both locks remain usable in the legal order.
        with alpha:
            with beta:
                pass

    def test_reentrant_reacquisition_is_not_an_inversion(self, armed):
        declare_lock_order("alpha", "beta")
        alpha = tracked_lock("alpha")
        beta = tracked_lock("beta")
        with alpha:
            with beta:
                with alpha:  # reentrant: already held, no new edge
                    pass

    def test_seeded_inversion_is_deterministic(self, armed):
        # The stack trailer embeds the *invoking* line, so determinism is
        # asserted on the schedule step and the diagnostic header: same
        # seed, same inversion, same report.
        first_step, first_message = _drive_lock_schedule(seed=0xC0FFEE)
        reset_sanitizer()
        second_step, second_message = _drive_lock_schedule(seed=0xC0FFEE)
        assert first_step == second_step
        assert first_message.splitlines()[0] == second_message.splitlines()[0]
        step, message = first_step, first_message
        assert "declared global order is ('alpha', 'beta', 'gamma')" in message
        # A different seed takes a different path to (some) violation.
        reset_sanitizer()
        other_step, _ = _drive_lock_schedule(seed=2)
        assert other_step != step


# ----------------------------------------------------------------------
# race detection
# ----------------------------------------------------------------------
class TestRaceDetection:
    def test_locked_actors_are_ordered(self, armed):
        shared = SharedMap()
        with actor("scan-worker"):
            shared.put("page", 1)
        with actor("evict-worker"):
            shared.put("page", 2)  # HB edge via map-lock release/acquire
            assert shared.get("page") == 2
        assert sanitizer_counters()["race_checks"] >= 3

    def test_unguarded_mutation_races(self, armed):
        shared = SharedMap()
        with actor("scan-worker"):
            shared.put("page", 1)
        with actor("evict-worker"):
            with pytest.raises(RaceViolation) as exc:
                shared.put_unguarded("page", 2)
        message = str(exc.value)
        assert "data race on SharedMap.entries" in message
        assert "guarded by '_lock'" in message
        assert "NOT held here" in message
        assert "previous write by 'scan-worker':" in message
        assert "current write by 'evict-worker':" in message

    def test_read_write_conflict_races(self, armed):
        shared = SharedMap()
        with actor("scan-worker"):
            with shared._lock:
                note_access(shared, "entries", write=False)
        with actor("evict-worker"):
            with pytest.raises(RaceViolation):
                shared.put_unguarded("page", 2)

    def test_same_actor_never_races_with_itself(self, armed):
        shared = SharedMap()
        with actor("scan-worker"):
            shared.put_unguarded("page", 1)
            shared.put_unguarded("page", 2)  # program order: no race

    def test_unguarded_fields_are_ignored(self, armed):
        shared = SharedMap()
        with actor("scan-worker"):
            note_access(shared, "not_guarded")
        with actor("evict-worker"):
            note_access(shared, "not_guarded")  # no registry entry: no-op
        assert sanitizer_counters()["tracked_fields"] == 0

    def test_seeded_race_is_deterministic(self, armed):
        first_step, first_message = _drive_race_schedule(seed=0xBADCAB)
        reset_sanitizer()
        second_step, second_message = _drive_race_schedule(seed=0xBADCAB)
        assert first_step == second_step
        assert first_message.splitlines()[0] == second_message.splitlines()[0]
        assert "data race on SharedMap.entries" in first_message


# ----------------------------------------------------------------------
# actors, gating and bookkeeping
# ----------------------------------------------------------------------
class TestActorsAndGate:
    def test_virtual_actors_nest(self):
        default = current_actor()
        assert default.startswith("thread-")
        with actor("outer"):
            assert current_actor() == "outer"
            with actor("inner"):
                assert current_actor() == "inner"
            assert current_actor() == "outer"
        assert current_actor() == default

    def test_gate_off_costs_nothing_and_raises_nothing(self):
        reset_sanitizer()
        declare_lock_order("alpha", "beta")
        alpha = tracked_lock("alpha")
        beta = tracked_lock("beta")
        with checks(False):
            with beta:
                with alpha:  # inverted, but checks are off
                    pass
            shared = SharedMap()
            with actor("scan-worker"):
                shared.put_unguarded("k", 1)
            with actor("evict-worker"):
                shared.put_unguarded("k", 2)
        counters = sanitizer_counters()
        assert counters["order_checks"] == 0
        assert counters["race_checks"] == 0
        declare_lock_order(*GLOBAL_LOCK_ORDER)

    def test_reset_clears_all_state(self, armed):
        declare_lock_order()
        first = tracked_lock("undeclared-a")
        second = tracked_lock("undeclared-b")
        with first:
            with second:
                pass
        shared = SharedMap()
        with actor("scan-worker"):
            shared.put("k", 1)
        assert sanitizer_counters()["lock_edges"] >= 1
        assert sanitizer_counters()["tracked_fields"] >= 1
        reset_sanitizer()
        counters = sanitizer_counters()
        assert counters == {
            "order_checks": 0,
            "race_checks": 0,
            "lock_edges": 0,
            "tracked_fields": 0,
        }
        # The forgotten edge no longer forbids the opposite nesting.
        with second:
            with first:
                pass

    def test_engine_order_is_declared_on_import(self):
        assert declared_lock_order() == GLOBAL_LOCK_ORDER
        assert GLOBAL_LOCK_ORDER == (
            "executor-staging",
            "executor-observers",
            "buffer-pool",
            "io-scheduler",
            "shm-store",
        )

    def test_tracked_lock_repr_and_factory(self):
        lock = tracked_lock("repr-check")
        assert isinstance(lock, TrackedLock)
        assert repr(lock) == "TrackedLock('repr-check')"
