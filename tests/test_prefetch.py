"""Tests for the sweep-ahead prefetch layer: lookahead cursors, the
evict-behind-the-plane policy (vs plain LRU's pathology), the prefetcher
lifecycle, and end-to-end stream identity on both kernel backends."""

import random

import pytest

from repro import invariants, kernels
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import (
    BufferPool,
    IOScheduler,
    LookaheadCursor,
    SimulatedDisk,
    SweepEvictionPolicy,
    SweepPrefetcher,
)

#: pinned data seeds — the eviction pathology and the end-to-end identity
#: checks must hold for every one of them, on both kernel backends
PINNED_SEEDS = (7, 21, 1999)


def make_pool(pages=12, capacity=4, *, devices=2, depth=4):
    disk = SimulatedDisk()
    ids = []
    for index in range(pages):
        page = disk.allocate(8)
        for slot in range(8):
            page.add((index, slot))
        ids.append(page.page_id)
    scheduler = IOScheduler(disk, devices, prefetch_depth=depth)
    pool = BufferPool(disk, capacity=capacity, scheduler=scheduler)
    return pool, scheduler, ids


def make_db(rows, seed, *, devices=1, prefetch_depth=0, buffer_pages=48):
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(seed)
    data = [(rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)]
    db = Database(
        buffer_pages=buffer_pages, devices=devices, prefetch_depth=prefetch_depth
    )
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    db.buffer.flush()
    db.reset_measurement()
    return db, ub


# ----------------------------------------------------------------------
# LookaheadCursor
# ----------------------------------------------------------------------
class TestLookaheadCursor:
    def test_peek_does_not_consume(self):
        cursor = LookaheadCursor(iter(range(5)))
        assert cursor.peek(3) == [0, 1, 2]
        assert list(cursor) == [0, 1, 2, 3, 4]

    def test_peek_past_the_end_returns_remainder(self):
        cursor = LookaheadCursor(iter(range(2)))
        assert cursor.peek(10) == [0, 1]
        assert list(cursor) == [0, 1]
        assert cursor.peek(1) == []

    def test_interleaved_peek_and_next(self):
        cursor = LookaheadCursor(iter(range(6)))
        assert next(cursor) == 0
        assert cursor.peek(2) == [1, 2]
        assert next(cursor) == 1
        assert cursor.peek(2) == [2, 3]
        assert list(cursor) == [2, 3, 4, 5]

    def test_zero_peek_is_empty(self):
        cursor = LookaheadCursor(iter(range(3)))
        assert cursor.peek(0) == []


# ----------------------------------------------------------------------
# the LRU pathology: plain LRU evicts the page the sweep needs next,
# the sweep policy never does
# ----------------------------------------------------------------------
class TestSweepEviction:
    def _fill(self, pool, ids):
        """Two pending prefetches (ahead of plane), two consumed frames."""
        assert pool.prefetch(ids[0])
        assert pool.prefetch(ids[1])
        pool.get(ids[2])
        pool.get(ids[3])
        assert pool.prefetch_pending == {ids[0], ids[1]}
        assert len(pool) == pool.capacity

    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_plain_lru_evicts_ahead_of_plane(self, seed):
        pool, scheduler, ids = make_pool()
        rng = random.Random(seed)
        rng.shuffle(ids)
        self._fill(pool, ids)
        pool.get(ids[4])  # forces an eviction; LRU victim is the oldest
        assert ids[0] not in pool  # the unclaimed prefetch was thrown away
        assert pool.prefetch_cancelled == 1
        assert scheduler.stats.prefetch.prefetch_wasted == 1

    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_sweep_policy_never_evicts_ahead_of_plane(self, seed):
        pool, scheduler, ids = make_pool()
        rng = random.Random(seed)
        rng.shuffle(ids)
        pool.eviction_policy = SweepEvictionPolicy()
        self._fill(pool, ids)
        pool.get(ids[4])
        # both pending prefetches survive; the LRU *consumed* frame went
        assert pool.prefetch_pending == {ids[0], ids[1]}
        assert ids[2] not in pool
        assert pool.prefetch_cancelled == 0
        # the spared prefetches are then claimed as hits, not wasted
        pool.get(ids[0])
        pool.get(ids[1])
        assert scheduler.stats.prefetch.prefetch_hits == 2
        assert scheduler.stats.prefetch.prefetch_wasted == 0

    def test_sweep_policy_degenerates_to_lru_without_pending(self):
        pool, _, ids = make_pool()
        pool.eviction_policy = SweepEvictionPolicy()
        for page_id in ids[:5]:
            pool.get(page_id)
        assert ids[0] not in pool  # plain LRU victim
        assert ids[1] in pool

    def test_all_pending_falls_back_to_lru(self):
        pool, _, ids = make_pool(capacity=4, depth=8)
        pool.eviction_policy = SweepEvictionPolicy()
        for page_id in ids[:4]:
            assert pool.prefetch(page_id)
        pool.get(ids[4])
        # every frame was ahead of the plane; LRU had to pick one anyway
        assert len(pool) == pool.capacity


# ----------------------------------------------------------------------
# SweepPrefetcher lifecycle
# ----------------------------------------------------------------------
class TestSweepPrefetcher:
    def test_for_pool_without_scheduler_returns_none(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=4)
        assert SweepPrefetcher.for_pool(pool) is None

    def test_for_pool_with_depth_zero_returns_none(self):
        disk = SimulatedDisk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=0)
        pool = BufferPool(disk, capacity=4, scheduler=scheduler)
        assert SweepPrefetcher.for_pool(pool) is None

    def test_depth_capped_at_half_the_pool(self):
        pool, _, _ = make_pool(capacity=4, depth=16)
        prefetcher = SweepPrefetcher.for_pool(pool)
        assert prefetcher is not None
        assert prefetcher.depth == 2
        prefetcher.close()

    def test_top_up_respects_window_and_consumption(self):
        pool, _, ids = make_pool(capacity=8, depth=2)
        prefetcher = SweepPrefetcher.for_pool(pool)
        assert prefetcher.top_up(ids[:6]) == 2
        assert prefetcher.top_up(ids[:6]) == 0  # window full
        pool.get(ids[0])
        prefetcher.mark_consumed(ids[0])
        assert prefetcher.top_up(ids[:6]) == 1  # slot freed
        prefetcher.close()

    def test_close_cancels_outstanding_and_restores_policy(self):
        pool, scheduler, ids = make_pool(capacity=8, depth=2)
        prefetcher = SweepPrefetcher.for_pool(pool)
        assert isinstance(pool.eviction_policy, SweepEvictionPolicy)
        prefetcher.top_up(ids[:2])
        prefetcher.close()
        assert pool.eviction_policy is None
        assert pool.prefetch_pending == frozenset()
        assert scheduler.inflight_count == 0
        assert scheduler.stats.prefetch.prefetch_wasted == 2
        prefetcher.close()  # idempotent

    def test_close_keeps_a_caller_installed_policy(self):
        pool, _, _ = make_pool()
        sentinel = SweepEvictionPolicy()
        pool.eviction_policy = sentinel
        prefetcher = SweepPrefetcher.for_pool(pool)
        prefetcher.close()
        assert pool.eviction_policy is sentinel


# ----------------------------------------------------------------------
# end to end: prefetched sweeps emit bit-identical streams and keep the
# accounting ledger balanced, on both kernel backends
# ----------------------------------------------------------------------
class TestEndToEndIdentity:
    @pytest.mark.parametrize("backend", kernels.available_backends())
    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_tetris_stream_identical_with_prefetch(self, backend, seed):
        with kernels.use_backend(backend):
            db_plain, ub_plain = make_db(500, seed)
            baseline = list(ub_plain.tetris_scan({"a1": (100, 900)}, "a2"))

            db_pf, ub_pf = make_db(500, seed, devices=4, prefetch_depth=8)
            stream = list(ub_pf.tetris_scan({"a1": (100, 900)}, "a2"))
        assert stream == baseline
        prefetch = db_pf.disk.stats.prefetch
        assert prefetch.prefetch_issued > 0
        # the ledger after a drained sweep: every issue was claimed as a
        # hit or cancelled as wasted, nothing is left in flight
        assert db_pf.scheduler.inflight_count == 0
        assert prefetch.prefetch_issued == (
            prefetch.prefetch_hits + prefetch.prefetch_wasted
        )
        pool = db_pf.buffer
        assert pool.prefetch_issued == (
            pool.prefetch_claimed + pool.prefetch_cancelled
        )
        invariants.validate_buffer_pool(pool)

    @pytest.mark.parametrize("backend", kernels.available_backends())
    def test_range_query_identical_with_prefetch(self, backend):
        seed = PINNED_SEEDS[0]
        with kernels.use_backend(backend):
            db_plain, ub_plain = make_db(500, seed)
            baseline = list(ub_plain.range_query({"a1": (0, 511), "a2": (0, 511)}))

            db_pf, ub_pf = make_db(500, seed, devices=4, prefetch_depth=8)
            stream = list(ub_pf.range_query({"a1": (0, 511), "a2": (0, 511)}))
        assert stream == baseline
        assert db_pf.disk.stats.prefetch.prefetch_issued > 0
        invariants.validate_buffer_pool(db_pf.buffer)

    def test_abandoned_scan_cancels_its_window(self):
        db, ub = make_db(500, PINNED_SEEDS[0], devices=4, prefetch_depth=8)
        scan = iter(ub.tetris_scan({"a1": (100, 900)}, "a2"))
        for _ in range(5):
            next(scan)
        scan.close()
        assert db.scheduler.inflight_count == 0
        assert db.buffer.prefetch_pending == frozenset()
        invariants.validate_buffer_pool(db.buffer)
