"""Tests for ZSpace: Z/Tetris addresses, extract/reduce, conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.zorder import ZSpace


def test_basic_properties():
    space = ZSpace([3, 4])
    assert space.dims == 2
    assert space.total_bits == 7
    assert space.address_max == 127
    assert space.coord_max == (7, 15)


def test_rejects_empty_and_zero_bit_dimensions():
    with pytest.raises(ValueError):
        ZSpace([])
    with pytest.raises(ValueError):
        ZSpace([3, 0])


def test_z_address_roundtrip():
    space = ZSpace([3, 3])
    for x in range(8):
        for y in range(8):
            assert space.point_of(space.z_address((x, y))) == (x, y)


def test_extract_recovers_attribute():
    space = ZSpace([3, 3, 2])
    point = (5, 2, 3)
    address = space.z_address(point)
    for dim in range(3):
        assert space.extract(address, dim) == point[dim]


def test_reduce_drops_one_dimension():
    space = ZSpace([3, 3])
    point = (5, 2)
    address = space.z_address(point)
    # reducing away dim 0 leaves the 1-d "curve" of dim 1: identity
    assert space.reduce(address, 0) == 2
    assert space.reduce(address, 1) == 5


def test_reduce_rejected_in_one_dimension():
    space = ZSpace([4])
    with pytest.raises(ValueError):
        space.reduce(3, 0)


def test_tetris_address_is_extract_concat_reduce():
    """T_j(x) = extract(Z(x), j) ∘ reduce(Z(x), j)  (Section 3.4)."""
    space = ZSpace([3, 2, 3])
    for point in [(0, 0, 0), (7, 3, 5), (4, 1, 2), (1, 2, 7)]:
        z = space.z_address(point)
        for dim in range(3):
            rest_bits = space.total_bits - space.bit_lengths[dim]
            expected = (space.extract(z, dim) << rest_bits) | space.reduce(z, dim)
            assert space.tetris_address(point, dim) == expected


def test_z_tetris_conversions_are_inverse():
    space = ZSpace([3, 3])
    for z in range(64):
        for dim in range(2):
            t = space.z_to_tetris(z, dim)
            assert space.tetris_to_z(t, dim) == z


def test_tetris_order_sorts_by_attribute():
    space = ZSpace([2, 3])
    points = [(x, y) for x in range(4) for y in range(8)]
    for dim in range(2):
        ordered = sorted(points, key=lambda p: space.tetris_address(p, dim))
        values = [p[dim] for p in ordered]
        assert values == sorted(values)


def test_hyperplane_contains():
    space = ZSpace([3, 3])
    address = space.z_address((5, 2))
    assert space.hyperplane_contains(address, 0, 5)
    assert space.hyperplane_contains(address, 1, 2)
    assert not space.hyperplane_contains(address, 0, 4)


def test_universe_box():
    space = ZSpace([2, 4])
    lo, hi = space.universe_box()
    assert lo == (0, 0)
    assert hi == (3, 15)


def test_curves_are_cached():
    space = ZSpace([3, 3])
    assert space.tetris(0) is space.tetris(0)
    assert space.reduced(1) is space.reduced(1)


@st.composite
def spaces_and_points(draw):
    dims = draw(st.integers(2, 4))
    bits = draw(st.lists(st.integers(1, 6), min_size=dims, max_size=dims))
    space = ZSpace(bits)
    point = tuple(draw(st.integers(0, (1 << b) - 1)) for b in bits)
    dim = draw(st.integers(0, dims - 1))
    return space, point, dim


@given(spaces_and_points())
@settings(max_examples=200, deadline=None)
def test_tetris_composition_property(space_point_dim):
    space, point, dim = space_point_dim
    z = space.z_address(point)
    rest_bits = space.total_bits - space.bit_lengths[dim]
    expected = (space.extract(z, dim) << rest_bits) | space.reduce(z, dim)
    assert space.tetris_address(point, dim) == expected


@given(spaces_and_points())
@settings(max_examples=200, deadline=None)
def test_conversion_roundtrip_property(space_point_dim):
    space, point, dim = space_point_dim
    z = space.z_address(point)
    assert space.tetris_to_z(space.z_to_tetris(z, dim), dim) == z
