"""End-to-end integration tests: the paper's claims on a shared substrate."""

import random

import pytest

from repro.core.query_space import QueryBox
from repro.costmodel import SECTION_4_PARAMS, c_tetris, tetris_regions
from repro.planner import RelationStats, choose_plan
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import (
    ExternalMergeSort,
    FirstTupleTimer,
    FullTableScan,
    IOTScan,
    TetrisOperator,
)
from repro.storage import ICDE99_ANALYSIS


def build_world(rows=6000, domain_bits=10, page_capacity=40, seed=0):
    """One relation in three physical organizations on one simulated disk."""
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, (1 << domain_bits) - 1)),
            Attribute("a2", IntEncoder(0, (1 << domain_bits) - 1)),
            Attribute("payload", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(seed)
    data = [
        (rng.randrange(1 << domain_bits), rng.randrange(1 << domain_bits), i)
        for i in range(rows)
    ]
    db = Database(ICDE99_ANALYSIS, buffer_pages=64)
    heap = db.create_heap_table("heap", schema, page_capacity)
    heap.load(data)
    iot_a1 = db.create_iot("iot_a1", schema, key=("a1", "a2"), page_capacity=page_capacity)
    iot_a1.load(data)
    iot_a2 = db.create_iot("iot_a2", schema, key=("a2", "a1"), page_capacity=page_capacity)
    iot_a2.load(data)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=page_capacity)
    ub.load(data)
    return db, data, heap, iot_a1, iot_a2, ub


@pytest.fixture(scope="module")
def world():
    return build_world()


def measure(db, plan):
    db.reset_measurement()
    timer = FirstTupleTimer(plan, db.disk)
    rows = list(timer)
    return rows, timer


class TestSortWithRestriction:
    """Sorting on A2 with a 50 % restriction on A1 (the Fig. 4-2 scenario)."""

    LIMIT = 511  # a1 <= 511 of 0..1023 -> 50 %

    def test_all_methods_same_multiset_and_order(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        expected = sorted(
            (r for r in data if r[0] <= self.LIMIT), key=lambda r: r[1]
        )

        tetris_rows, _ = measure(
            db, TetrisOperator(ub, {"a1": (0, self.LIMIT)}, "a2")
        )
        fts_rows, _ = measure(
            db,
            ExternalMergeSort(
                FullTableScan(heap, predicate=lambda r: r[0] <= self.LIMIT),
                key=lambda r: r[1],
                disk=db.disk,
                memory_pages=8,
                page_capacity=40,
            ),
        )
        iot_rows, _ = measure(
            db, IOTScan(iot_a2, predicate=lambda r: r[0] <= self.LIMIT)
        )
        for rows in (tetris_rows, fts_rows, iot_rows):
            assert [r[1] for r in rows] == [r[1] for r in expected]
            assert sorted(rows) == sorted(expected)

    def test_tetris_is_fastest_and_pipelined(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world

        tetris_op = TetrisOperator(ub, {"a1": (0, self.LIMIT)}, "a2")
        _, tetris_timer = measure(db, tetris_op)
        _, fts_timer = measure(
            db,
            ExternalMergeSort(
                FullTableScan(heap, predicate=lambda r: r[0] <= self.LIMIT),
                key=lambda r: r[1],
                disk=db.disk,
                memory_pages=8,
                page_capacity=40,
            ),
        )
        _, iot_timer = measure(
            db, IOTScan(iot_a2, predicate=lambda r: r[0] <= self.LIMIT)
        )

        # response time: Tetris wins (paper Fig. 4-2 at s1 = 50 %)
        assert tetris_timer.elapsed < fts_timer.elapsed
        assert tetris_timer.elapsed < iot_timer.elapsed
        # pipelining: first tuple orders of magnitude earlier than FTS-sort
        assert tetris_timer.time_to_first < fts_timer.time_to_first / 10

    def test_tetris_cache_sublinear(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        op = TetrisOperator(ub, {"a1": (0, self.LIMIT)}, "a2")
        rows, _ = measure(db, op)
        # cache is far below the result size (the sqrt law of Section 4.4)
        assert op.stats.max_cache_tuples < len(rows) / 4

    def test_no_temporary_storage_for_tetris(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        db.reset_measurement()
        before = db.disk.snapshot()
        list(TetrisOperator(ub, {"a1": (0, self.LIMIT)}, "a2"))
        delta = db.disk.snapshot() - before
        assert delta.pages_written == 0


class TestCostModelValidation:
    """Section 4.2: 'this rather complicated cost function describes the
    actual behavior of the UB-Tree very accurately'."""

    def test_region_count_within_model_factor(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        for selectivity in (0.25, 0.5, 1.0):
            limit = int(selectivity * 1024) - 1
            op = TetrisOperator(ub, {"a1": (0, limit)}, "a2")
            db.reset_measurement()
            list(op)
            predicted = tetris_regions(ub.page_count, [(0.0, selectivity), (0.0, 1.0)])
            measured = op.stats.regions_read
            assert 0.4 <= measured / predicted <= 2.5, (selectivity, measured, predicted)

    def test_measured_time_tracks_model(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        op = TetrisOperator(ub, {"a1": (0, 511)}, "a2")
        db.reset_measurement()
        before = db.disk.snapshot()
        list(op)
        measured = (db.disk.snapshot() - before).time
        predicted = c_tetris(ub.page_count, [(0.0, 0.5), (0.0, 1.0)], SECTION_4_PARAMS)
        assert 0.4 <= measured / predicted <= 2.5


class TestPlannerAgainstSimulation:
    def test_planner_pick_is_near_optimal_when_executed(self, world):
        """Executing the optimizer's pick comes out at (or within a small
        factor of) the best measured alternative.  At this toy scale the
        model sits near the Tetris/FTS-sort crossover of Figure 4-2, so we
        assert near-optimality rather than one specific winner.
        """
        db, data, heap, iot_a1, iot_a2, ub = world
        stats = RelationStats(
            pages=heap.page_count,
            attributes=("a1", "a2"),
            heap_instance="heap",
            iot_instances=(("a1", "iot_a1"), ("a2", "iot_a2")),
            ub_instance="ub",
            ub_fill_factor=ub.page_count / heap.page_count,
        )
        from repro.costmodel import CostParameters

        params = CostParameters(memory_pages=8)
        plan = choose_plan(stats, {"a1": (0.0, 0.5)}, "a2", params)
        assert plan.method in ("tetris", "fts-sort")  # the two contenders

        _, tetris_timer = measure(db, TetrisOperator(ub, {"a1": (0, 511)}, "a2"))
        _, fts_timer = measure(
            db,
            ExternalMergeSort(
                FullTableScan(heap, predicate=lambda r: r[0] <= 511),
                key=lambda r: r[1],
                disk=db.disk,
                memory_pages=8,
                page_capacity=40,
            ),
        )
        measured = {"tetris": tetris_timer.elapsed, "fts-sort": fts_timer.elapsed}
        best = min(measured.values())
        assert measured[plan.method] <= 1.5 * best

    def test_planner_picks_tetris_at_paper_scale(self, world):
        """At the paper's 125k-page scale the model picks Tetris outright."""
        stats = RelationStats(
            pages=125_000,
            attributes=("a1", "a2"),
            heap_instance="heap",
            iot_instances=(("a1", "iot_a1"), ("a2", "iot_a2")),
            ub_instance="ub",
        )
        plan = choose_plan(stats, {"a1": (0.0, 0.5)}, "a2", SECTION_4_PARAMS)
        assert plan.method == "tetris"


class TestSecondaryIndexLoses:
    """Sections 5.1/5.3: RID fetches through a secondary index are much
    slower than a full table scan at moderate selectivity."""

    def test_secondary_index_slower_than_fts(self, world):
        db, data, heap, iot_a1, iot_a2, ub = world
        index = heap.create_secondary_index("a1")
        db.reset_measurement()
        before = db.disk.snapshot()
        rows_via_index = list(index.fetch(0, 511))
        index_time = (db.disk.snapshot() - before).time

        db.reset_measurement()
        before = db.disk.snapshot()
        rows_via_scan = [r for r in heap.scan() if r[0] <= 511]
        scan_time = (db.disk.snapshot() - before).time

        assert sorted(rows_via_index) == sorted(rows_via_scan)
        assert index_time > scan_time
