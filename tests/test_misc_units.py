"""Focused unit tests for corners not covered elsewhere."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.bptree import BPlusTree
from repro.core import Curve, QueryBox, UBTree, ZSpace, tetris_sorted
from repro.core.tetris import TetrisStats, _FlippedCurve
from repro.relational.schema import DateEncoder, DecimalEncoder
from repro.storage import BufferPool, SimulatedDisk
from repro.storage.stats import CategoryStats, IOStats


class TestIOStatsArithmetic:
    def test_category_subtraction(self):
        a = CategoryStats(pages_read=10, pages_written=4, read_seeks=3)
        b = CategoryStats(pages_read=6, pages_written=1, read_seeks=2)
        d = a - b
        assert (d.pages_read, d.pages_written, d.read_seeks) == (4, 3, 1)

    def test_iostats_subtraction_with_new_categories(self):
        later = IOStats(time=5.0)
        later.category("data").pages_read = 7
        later.category("temp").pages_written = 3
        earlier = IOStats(time=2.0)
        earlier.category("data").pages_read = 2
        d = later - earlier
        assert d.time == pytest.approx(3.0)
        assert d.categories["data"].pages_read == 5
        assert d.categories["temp"].pages_written == 3

    def test_copy_is_deep(self):
        stats = IOStats()
        stats.category("data").pages_read = 1
        snapshot = stats.copy()
        stats.category("data").pages_read = 99
        assert snapshot.categories["data"].pages_read == 1

    def test_aggregate_properties(self):
        stats = IOStats()
        stats.category("a").pages_read = 2
        stats.category("a").read_seeks = 2
        stats.category("b").pages_written = 5
        stats.category("b").write_seeks = 1
        assert stats.pages_read == 2
        assert stats.pages_written == 5
        assert stats.seeks == 3


class TestSplitIndex:
    def test_prefers_middle(self):
        assert BPlusTree._split_index([1, 2, 3, 4]) == 2

    def test_avoids_equal_key_boundary(self):
        # middle boundary splits equal keys; nearest clean boundary wins
        assert BPlusTree._split_index([1, 2, 2, 3]) in (1, 3)

    def test_all_equal_returns_none(self):
        assert BPlusTree._split_index([7, 7, 7, 7]) is None

    def test_two_distinct(self):
        assert BPlusTree._split_index([1, 2]) == 1


class TestFlippedCurve:
    def test_roundtrip(self):
        base = Curve.tetris_curve([3, 3], 0)
        flipped = _FlippedCurve(base, frozenset({0}))
        for x in range(8):
            for y in range(8):
                assert flipped.decode(flipped.encode((x, y))) == (x, y)

    def test_reverses_sort_dimension(self):
        base = Curve.tetris_curve([3, 3], 0)
        flipped = _FlippedCurve(base, frozenset({0}))
        # larger x -> smaller flipped address (holding y fixed)
        assert flipped.encode((7, 3)) < flipped.encode((0, 3))

    def test_next_in_box_matches_brute_force(self):
        base = Curve.tetris_curve([3, 3], 1)
        flipped = _FlippedCurve(base, frozenset({1}))
        lo, hi = (1, 2), (6, 5)
        for address in range(0, 64, 3):
            got = flipped.next_in_box(address, lo, hi)
            best = None
            for candidate in range(address, 64):
                if Curve.point_in_box(flipped.decode(candidate), lo, hi):
                    best = candidate
                    break
            assert got == best


class TestTetrisStats:
    def test_time_to_first_none_without_output(self):
        stats = TetrisStats()
        assert stats.time_to_first is None
        assert stats.elapsed == 0.0

    def test_cache_pages_rounds_up(self):
        stats = TetrisStats(max_cache_tuples=81)
        assert stats.cache_pages(80) == 2
        assert TetrisStats(max_cache_tuples=80).cache_pages(80) == 1
        assert TetrisStats(max_cache_tuples=0).cache_pages(80) == 0


class TestEncoderRoundtrips:
    @given(st.integers(0, 2556))  # 1992-01-01 .. 1998-12-31 inclusive
    @settings(max_examples=100, deadline=None)
    def test_date_roundtrip_property(self, offset):
        encoder = DateEncoder(dt.date(1992, 1, 1), dt.date(1998, 12, 31))
        day = dt.date(1992, 1, 1) + dt.timedelta(days=offset)
        assert encoder.decode(encoder.encode(day)) == day

    @given(st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_decimal_roundtrip_property(self, cents):
        encoder = DecimalEncoder(0.0, 100.0, scale=2)
        value = cents / 100
        assert encoder.decode(encoder.encode(value)) == pytest.approx(value)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_decimal_order_preserving(self, a, b):
        encoder = DecimalEncoder(0.0, 100.0, scale=2)
        ea, eb = encoder.encode(a / 100), encoder.encode(b / 100)
        assert (ea < eb) == (a < b)


class TestScanStatsConsistency:
    def test_tetris_stats_internally_consistent(self):
        import random

        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 64), ZSpace([5, 5]), page_capacity=4)
        rng = random.Random(11)
        for index in range(300):
            tree.insert((rng.randrange(32), rng.randrange(32)), index)
        box = QueryBox((4, 4), (27, 27))
        scan = tetris_sorted(tree, box, 0)
        out = list(scan)
        stats = scan.stats
        assert stats.tuples_output == len(out)
        assert stats.regions_read == len(scan.page_access_order)
        assert stats.regions_read <= stats.regions_examined
        assert stats.max_cache_tuples <= stats.tuples_output
        assert stats.start_clock <= stats.first_output_clock <= stats.end_clock
        assert stats.slices >= 1

    def test_page_reads_equal_priced_io(self):
        import random

        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 4), ZSpace([5, 5]), page_capacity=4)
        rng = random.Random(12)
        for index in range(200):
            tree.insert((rng.randrange(32), rng.randrange(32)), index)
        tree.tree.buffer.drop_all()
        before = disk.snapshot()
        scan = tetris_sorted(tree, QueryBox((0, 0), (31, 31)), 1)
        list(scan)
        delta = disk.snapshot() - before
        assert delta.pages_read == scan.stats.regions_read
        assert delta.time == pytest.approx(
            scan.stats.regions_read * (disk.params.t_pi + disk.params.t_tau)
        )
