"""Tests for the UB-Tree: partitioning invariants, point/range queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryBox, UBTree, ZSpace
from repro.core.query_space import ComparisonSpace, IntersectionSpace
from repro.storage import BufferPool, SimulatedDisk


def make_ubtree(bits=(4, 4), page_capacity=4, buffer_pages=256):
    disk = SimulatedDisk()
    pool = BufferPool(disk, buffer_pages)
    return UBTree(pool, ZSpace(bits), page_capacity=page_capacity), disk


def fill(ubtree, count, seed=0, bits=(4, 4)):
    rng = random.Random(seed)
    points = []
    for index in range(count):
        point = tuple(rng.randrange(1 << b) for b in bits)
        points.append(point)
        ubtree.insert(point, index)
    return points


class TestUBTreeBasics:
    def test_empty_tree_invariants(self):
        ubtree, _ = make_ubtree()
        ubtree.check_invariants()
        assert len(ubtree) == 0
        assert ubtree.region_count == 1

    def test_insert_and_point_query(self):
        ubtree, _ = make_ubtree()
        ubtree.insert((3, 5), "payload")
        assert ubtree.point_query((3, 5)) == ["payload"]
        assert ubtree.point_query((5, 3)) == []

    def test_point_query_distinguishes_same_z_neighbourhood(self):
        ubtree, _ = make_ubtree()
        ubtree.insert((1, 2), "a")
        ubtree.insert((2, 1), "b")
        assert ubtree.point_query((1, 2)) == ["a"]
        assert ubtree.point_query((2, 1)) == ["b"]

    def test_duplicate_points(self):
        ubtree, _ = make_ubtree()
        ubtree.insert((3, 3), "first")
        ubtree.insert((3, 3), "second")
        assert sorted(ubtree.point_query((3, 3))) == ["first", "second"]

    def test_delete(self):
        ubtree, _ = make_ubtree()
        ubtree.insert((3, 3), "first")
        ubtree.insert((3, 3), "second")
        assert ubtree.delete((3, 3), "first")
        assert ubtree.point_query((3, 3)) == ["second"]
        assert not ubtree.delete((9, 9))

    def test_regions_tile_universe_after_splits(self):
        ubtree, _ = make_ubtree(page_capacity=2)
        fill(ubtree, 100, seed=5)
        ubtree.check_invariants()  # includes tiling + containment checks
        assert ubtree.region_count > 10

    def test_region_for_bounds(self):
        ubtree, _ = make_ubtree(page_capacity=2)
        fill(ubtree, 60, seed=2)
        previous_last = -1
        for region in ubtree.regions():
            assert region.first == previous_last + 1
            previous_last = region.last
        assert previous_last == ubtree.space.address_max

    def test_region_for_any_address(self):
        ubtree, _ = make_ubtree(page_capacity=2)
        fill(ubtree, 40, seed=3)
        for z in range(0, 256, 17):
            region, page = ubtree.region_for(z, charge=False)
            assert region.contains(z)


class TestRangeQuery:
    def test_matches_brute_force(self):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 150, seed=7)
        box = QueryBox((2, 3), (11, 13))
        expected = sorted(
            (point, index)
            for index, point in enumerate(points)
            if box.contains_point(point)
        )
        got = sorted(ubtree.range_query(box))
        assert got == expected

    def test_each_region_read_once(self):
        ubtree, disk = make_ubtree(page_capacity=3, buffer_pages=4)
        fill(ubtree, 150, seed=7)
        ubtree.tree.buffer.drop_all()
        box = QueryBox((2, 3), (11, 13))
        overlapping = sum(1 for _ in ubtree.regions_overlapping(box))
        before = disk.snapshot()
        list(ubtree.range_query(box))
        delta = disk.snapshot() - before
        assert delta.pages_read == overlapping
        assert delta.read_seeks == overlapping

    def test_empty_box(self):
        ubtree, _ = make_ubtree()
        fill(ubtree, 30)
        empty = QueryBox((5, 5), (3, 3))
        assert list(ubtree.range_query(empty)) == []

    def test_full_universe_box_returns_everything(self):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 80, seed=11)
        box = QueryBox.full(ubtree.space.coord_max)
        assert len(list(ubtree.range_query(box))) == len(points)

    def test_point_box(self):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 80, seed=13)
        target = points[17]
        box = QueryBox(target, target)
        results = [payload for _, payload in ubtree.range_query(box)]
        expected = [i for i, p in enumerate(points) if p == target]
        assert sorted(results) == expected

    def test_triangular_space_pruning(self):
        ubtree, disk = make_ubtree(page_capacity=3)
        points = fill(ubtree, 150, seed=17)
        triangle = IntersectionSpace(
            [
                QueryBox.full(ubtree.space.coord_max),
                ComparisonSpace(2, 0, "<", 1),
            ]
        )
        expected = sorted(
            (p, i) for i, p in enumerate(points) if p[0] < p[1]
        )
        assert sorted(ubtree.range_query(triangle)) == expected
        # pruning reads fewer pages than the full region count
        ubtree.tree.buffer.drop_all()
        before = disk.snapshot()
        list(ubtree.range_query(triangle))
        delta = disk.snapshot() - before
        assert delta.pages_read < ubtree.region_count

    def test_three_dimensional(self):
        ubtree, _ = make_ubtree(bits=(3, 3, 3), page_capacity=4)
        points = fill(ubtree, 120, seed=19, bits=(3, 3, 3))
        box = QueryBox((1, 2, 0), (6, 7, 4))
        expected = sorted(
            (p, i) for i, p in enumerate(points) if box.contains_point(p)
        )
        assert sorted(ubtree.range_query(box)) == expected
        assert ubtree.range_count(box) == len(expected)


@st.composite
def ubtree_cases(draw):
    dims = draw(st.integers(2, 3))
    bits = tuple(draw(st.integers(2, 4)) for _ in range(dims))
    count = draw(st.integers(0, 60))
    seed = draw(st.integers(0, 10_000))
    lo = tuple(draw(st.integers(0, (1 << b) - 1)) for b in bits)
    hi = tuple(
        draw(st.integers(low, (1 << b) - 1)) for low, b in zip(lo, bits)
    )
    return bits, count, seed, lo, hi


@given(ubtree_cases())
@settings(max_examples=60, deadline=None)
def test_range_query_property(case):
    bits, count, seed, lo, hi = case
    ubtree, _ = make_ubtree(bits=bits, page_capacity=3)
    points = fill(ubtree, count, seed=seed, bits=bits)
    ubtree.check_invariants()
    box = QueryBox(lo, hi)
    expected = sorted(
        (p, i) for i, p in enumerate(points) if box.contains_point(p)
    )
    assert sorted(ubtree.range_query(box)) == expected
