"""Tests for schemas and the order-preserving encoders."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import (
    Attribute,
    DateEncoder,
    DecimalEncoder,
    IntEncoder,
    Schema,
    StringEncoder,
)


class TestIntEncoder:
    def test_roundtrip_and_bits(self):
        encoder = IntEncoder(10, 73)
        assert encoder.bits == 6
        assert encoder.code_max == 63
        for value in (10, 42, 73):
            assert encoder.decode(encoder.encode(value)) == value

    def test_zero_width_domain(self):
        encoder = IntEncoder(5, 5)
        assert encoder.bits == 1
        assert encoder.encode(5) == 0

    def test_rejects_out_of_domain(self):
        encoder = IntEncoder(0, 10)
        with pytest.raises(ValueError):
            encoder.encode(11)
        with pytest.raises(ValueError):
            encoder.encode(-1)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            IntEncoder(5, 4)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000), st.data())
    @settings(max_examples=200, deadline=None)
    def test_order_preserving(self, a, b, data):
        lo, hi = min(a, b), max(a, b)
        encoder = IntEncoder(lo, hi)
        x = data.draw(st.integers(lo, hi))
        y = data.draw(st.integers(lo, hi))
        assert (encoder.encode(x) < encoder.encode(y)) == (x < y)


class TestDateEncoder:
    def test_roundtrip(self):
        encoder = DateEncoder(dt.date(1992, 1, 1), dt.date(1998, 12, 31))
        day = dt.date(1995, 6, 17)
        assert encoder.decode(encoder.encode(day)) == day

    def test_accepts_day_offsets(self):
        encoder = DateEncoder(dt.date(2000, 1, 1), dt.date(2000, 12, 31))
        assert encoder.encode(5) == 5

    def test_order_preserving(self):
        encoder = DateEncoder(dt.date(1992, 1, 1), dt.date(1998, 12, 31))
        a = encoder.encode(dt.date(1994, 3, 1))
        b = encoder.encode(dt.date(1994, 3, 2))
        assert a < b

    def test_rejects_out_of_domain(self):
        encoder = DateEncoder(dt.date(2000, 1, 1), dt.date(2000, 12, 31))
        with pytest.raises(ValueError):
            encoder.encode(dt.date(1999, 12, 31))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            DateEncoder(dt.date(2001, 1, 1), dt.date(2000, 1, 1))


class TestDecimalEncoder:
    def test_roundtrip(self):
        encoder = DecimalEncoder(0.0, 0.10, scale=2)
        assert encoder.decode(encoder.encode(0.07)) == pytest.approx(0.07)
        assert encoder.bits == 4  # 10 steps

    def test_order_preserving(self):
        encoder = DecimalEncoder(-1.0, 1.0, scale=2)
        assert encoder.encode(-0.5) < encoder.encode(0.25)

    def test_rejects_out_of_domain(self):
        encoder = DecimalEncoder(0.0, 1.0)
        with pytest.raises(ValueError):
            encoder.encode(1.5)


class TestStringEncoder:
    def test_prefix_roundtrip(self):
        encoder = StringEncoder(prefix_chars=4)
        assert encoder.decode(encoder.encode("FOOD")) == "FOOD"
        assert not encoder.lossless

    def test_lossy_beyond_prefix(self):
        encoder = StringEncoder(prefix_chars=2)
        assert encoder.encode("BUILDING") == encoder.encode("BUSTED"[:2] + "ILDING") or True
        assert encoder.decode(encoder.encode("BUILDING")) == "BU"

    def test_order_preserving_on_prefix(self):
        encoder = StringEncoder(prefix_chars=3)
        words = ["APPLE", "BANANA", "CHERRY", "DATE"]
        codes = [encoder.encode(word) for word in words]
        assert codes == sorted(codes)

    def test_short_strings_padded(self):
        encoder = StringEncoder(prefix_chars=4)
        assert encoder.encode("A") < encoder.encode("AA")

    def test_rejects_zero_prefix(self):
        with pytest.raises(ValueError):
            StringEncoder(prefix_chars=0)

    @given(st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_never_inverts_order(self, a, b):
        """Lossy, but codes never *invert* the string order."""
        encoder = StringEncoder(prefix_chars=4)
        ea, eb = encoder.encode(a), encoder.encode(b)
        a_bytes, b_bytes = a.encode()[:4], b.encode()[:4]
        if a_bytes < b_bytes:
            assert ea <= eb


class TestSchema:
    def make(self):
        return Schema(
            [
                Attribute("id", IntEncoder(0, 100)),
                Attribute("when", DateEncoder(dt.date(2000, 1, 1), dt.date(2001, 1, 1))),
                Attribute("name", StringEncoder(2)),
            ]
        )

    def test_positions_and_access(self):
        schema = self.make()
        assert len(schema) == 3
        assert schema.position("when") == 1
        row = (7, dt.date(2000, 5, 5), "ZZ")
        assert schema.value(row, "name") == "ZZ"
        assert schema.project(row, ("name", "id")) == ("ZZ", 7)

    def test_encode_point(self):
        schema = self.make()
        row = (7, dt.date(2000, 1, 3), "AB")
        point = schema.encode_point(row, ("id", "when"))
        assert point == (7, 2)

    def test_bit_lengths(self):
        schema = self.make()
        assert schema.bit_lengths(("id", "name")) == (7, 16)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            Schema([Attribute("x", IntEncoder(0, 1)), Attribute("x", IntEncoder(0, 1))])

    def test_iteration(self):
        schema = self.make()
        assert [attr.name for attr in schema] == ["id", "when", "name"]
