"""Tests for box-cover restriction pushdown (``repro.planner.pushdown``).

The load-bearing claims: a key cover is always a *superset* of the
qualifying key set within its interval budget (pushdown may read too
much, never too little), the :class:`IntervalUnionSpace` it produces is
exact (not conservative), and a Tetris sweep restricted by a pushdown
space returns exactly the rows whose encoded key the space contains —
while genuinely skipping the regions it rules out.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.query_space import IntervalUnionSpace
from repro.planner.pushdown import (
    DEFAULT_COVER_BUDGET,
    KeyCover,
    build_key_cover,
    pushdown_space,
)
from repro.relational import Attribute, Database, IntEncoder, Schema

DIMS = ("a1", "a2")


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def make_table(rows, page_capacity: int = 32):
    db = Database(buffer_pages=64)
    table = db.create_ub_table("t", make_schema(), DIMS, page_capacity)
    table.bulk_load(rows)
    return db, table


def covers(cover: KeyCover, key: int) -> bool:
    return any(lo <= key <= hi for lo, hi in cover.intervals)


# ----------------------------------------------------------------------
# cover construction
# ----------------------------------------------------------------------
class TestBuildKeyCover:
    def test_empty_keys(self):
        cover = build_key_cover([], budget=8)
        assert cover.intervals == ()
        assert cover.key_count == 0
        assert cover.covered_values == 0
        assert not cover.is_hull

    def test_consecutive_keys_coalesce_to_one_run(self):
        cover = build_key_cover([5, 6, 7, 8], budget=8)
        assert cover.intervals == ((5, 8),)
        assert cover.natural_runs == 1
        assert cover.key_count == 4

    def test_duplicates_ignored(self):
        cover = build_key_cover([3, 3, 3, 4], budget=8)
        assert cover.intervals == ((3, 4),)
        assert cover.key_count == 2

    def test_within_budget_runs_stay_exact(self):
        cover = build_key_cover([1, 2, 10, 11, 50], budget=3)
        assert cover.intervals == ((1, 2), (10, 11), (50, 50))
        assert cover.covered_values == cover.key_count == 5

    def test_budgeting_absorbs_smallest_gaps(self):
        # runs [1,1] [4,4] [100,100] [103,103]: the huge middle gap is
        # the one separator worth keeping under budget=2
        cover = build_key_cover([1, 4, 100, 103], budget=2)
        assert cover.intervals == ((1, 4), (100, 103))
        assert cover.natural_runs == 4

    def test_budget_one_is_convex_hull(self):
        cover = build_key_cover([7, 100, 900], budget=1)
        assert cover.intervals == ((7, 900),)
        assert cover.is_hull

    def test_single_run_is_not_a_hull(self):
        assert not build_key_cover([1, 2, 3], budget=1).is_hull

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            build_key_cover([1], budget=0)

    @given(
        st.lists(st.integers(0, 1023), max_size=120),
        st.integers(1, 8),
    )
    @settings(max_examples=150, deadline=None)
    def test_cover_is_a_bounded_superset(self, keys, budget):
        cover = build_key_cover(keys, budget)
        assert len(cover.intervals) <= budget
        # sorted, disjoint, non-touching
        for (_, hi), (lo, _) in zip(cover.intervals, cover.intervals[1:]):
            assert hi < lo
        for key in keys:
            assert covers(cover, key)
        assert cover.covered_values >= cover.key_count
        # deterministic: the same key set always yields the same cover
        assert build_key_cover(list(reversed(keys)), budget) == cover


# ----------------------------------------------------------------------
# the interval-union query space is exact
# ----------------------------------------------------------------------
class TestIntervalUnionSpace:
    COORD_MAX = (1023, 1023)

    def make_space(self, keys, budget=8, dim=0):
        cover = build_key_cover(keys, budget)
        return IntervalUnionSpace(self.COORD_MAX, dim, cover.intervals)

    @given(
        st.lists(st.integers(0, 1023), max_size=60),
        st.integers(0, 1),
        st.lists(
            st.tuples(st.integers(0, 1023), st.integers(0, 1023)), max_size=30
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_contains_point_matches_brute_force(self, keys, dim, points):
        space = self.make_space(keys, dim=dim)
        for point in points:
            expected = any(
                lo <= point[dim] <= hi for lo, hi in space.intervals
            )
            assert space.contains_point(point) == expected

    @given(
        st.lists(st.integers(0, 1023), max_size=60),
        st.lists(
            st.tuples(st.integers(0, 1023), st.integers(0, 1023)), max_size=20
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_intersects_box_matches_brute_force(self, keys, ranges):
        space = self.make_space(keys)
        for a, b in ranges:
            lo, hi = min(a, b), max(a, b)
            expected = any(
                run_lo <= hi and lo <= run_hi
                for run_lo, run_hi in space.intervals
            )
            assert space.intersects_box((lo, 0), (hi, 1023)) == expected

    def test_empty_space_has_inverted_bounding_box(self):
        space = IntervalUnionSpace(self.COORD_MAX, 0, ())
        assert space.is_empty
        lo, hi = space.bounding_box()
        assert lo[0] > hi[0]
        assert not space.intersects_box((0, 0), self.COORD_MAX)

    def test_bounding_box_clamps_to_hull(self):
        space = IntervalUnionSpace(self.COORD_MAX, 0, ((10, 20), (50, 60)))
        lo, hi = space.bounding_box()
        assert (lo[0], hi[0]) == (10, 60)
        assert (lo[1], hi[1]) == (0, 1023)

    def test_rejects_unsorted_or_overlapping_intervals(self):
        with pytest.raises(ValueError):
            IntervalUnionSpace(self.COORD_MAX, 0, ((10, 20), (15, 30)))
        with pytest.raises(ValueError):
            IntervalUnionSpace(self.COORD_MAX, 0, ((20, 10),))
        with pytest.raises(ValueError):
            IntervalUnionSpace(self.COORD_MAX, 0, ((0, 2000),))

    @pytest.mark.skipif(
        "numpy" not in kernels.available_backends(),
        reason="numpy backend unavailable",
    )
    def test_backends_agree_on_space_filtering(self):
        rng = random.Random(17)
        keys = [rng.randrange(1024) for _ in range(40)]
        space = self.make_space(keys, budget=6)
        points = [
            (rng.randrange(1024), rng.randrange(1024)) for _ in range(500)
        ]
        with kernels.use_backend("python"):
            pure = kernels.filter_space_batch(space, points)
        with kernels.use_backend("numpy"):
            vectorized = kernels.filter_space_batch(space, points)
        assert pure == vectorized


# ----------------------------------------------------------------------
# pushdown_space: encoding, validation, sweep integration
# ----------------------------------------------------------------------
class TestPushdownSpace:
    def make_rows(self, count=500, seed=11):
        rng = random.Random(seed)
        return [
            (rng.randrange(1024), rng.randrange(1024), i) for i in range(count)
        ]

    def test_rejects_non_dimension_attribute(self):
        _, table = make_table(self.make_rows(50))
        with pytest.raises(ValueError):
            pushdown_space(table, "v", [1, 2, 3])

    def test_empty_keys_give_empty_space(self):
        _, table = make_table(self.make_rows(50))
        space, cover = pushdown_space(table, "a1", [])
        assert space.is_empty
        assert cover.key_count == 0
        assert list(table.tetris_scan(None, "a2", pushdown=space)) == []

    def test_default_budget_bounds_intervals(self):
        _, table = make_table(self.make_rows(200))
        keys = list(range(0, 1024, 2))  # 512 natural runs
        space, cover = pushdown_space(table, "a1", keys)
        assert cover.budget == DEFAULT_COVER_BUDGET
        assert len(space.intervals) <= DEFAULT_COVER_BUDGET

    def test_sweep_returns_exactly_the_covered_rows(self):
        rows = self.make_rows(800)
        _, table = make_table(rows)
        keys = sorted({row[0] for row in rows if 100 <= row[0] <= 180})
        space, _ = pushdown_space(table, "a1", keys)
        plain = list(table.tetris_scan(None, "a2"))
        expected = [
            (point, row) for point, row in plain if space.contains_point(point)
        ]
        _, fresh = make_table(rows)
        space, _ = pushdown_space(fresh, "a1", keys)
        pushed = fresh.tetris_scan(None, "a2", pushdown=space)
        assert list(pushed) == expected
        assert pushed.stats.pages_skipped_by_pushdown > 0

    def test_pushdown_composes_with_restrictions(self):
        rows = self.make_rows(800)
        _, table = make_table(rows)
        keys = [row[0] for row in rows if row[0] < 64]
        space, _ = pushdown_space(table, "a1", keys)
        restricted = {"a2": (200, 700)}
        pushed = list(
            table.tetris_scan(restricted, "a2", pushdown=space)
        )
        _, fresh = make_table(rows)
        expected = [
            (point, row)
            for point, row in fresh.tetris_scan(restricted, "a2")
            if space.contains_point(point)
        ]
        assert pushed == expected

    def test_both_backends_and_strategies_agree(self):
        rows = self.make_rows(600)
        reference = None
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                for strategy in ("eager", "sweep"):
                    _, table = make_table(rows)
                    keys = [row[0] for row in rows if row[0] % 5 == 0]
                    space, _ = pushdown_space(table, "a1", keys)
                    got = list(
                        table.tetris_scan(
                            None, "a2", strategy=strategy, pushdown=space
                        )
                    )
                    if reference is None:
                        reference = got
                    assert got == reference
