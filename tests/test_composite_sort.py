"""Tests for composite (multi-attribute) Tetris sort orders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Curve, QueryBox, UBTree, ZSpace, tetris_sorted
from repro.core.curves import tetris_schedule
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import BufferPool, SimulatedDisk


class TestCompositeSchedule:
    def test_two_leading_dims(self):
        schedule = tetris_schedule([2, 2, 2], (1, 0))
        assert schedule[:4] == ((1, 0), (1, 1), (0, 0), (0, 1))
        assert schedule[4:] == ((2, 0), (2, 1))

    def test_all_dims_is_plain_lexicographic(self):
        curve = Curve.tetris_curve([2, 2], (0, 1))
        addresses = sorted(
            (curve.encode((x, y)), (x, y)) for x in range(4) for y in range(4)
        )
        points = [p for _, p in addresses]
        assert points == sorted(points)  # lexicographic tuple order

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            tetris_schedule([2, 2], (0, 0))
        with pytest.raises(ValueError):
            tetris_schedule([2, 2], ())
        with pytest.raises(ValueError):
            tetris_schedule([2, 2], (0, 5))

    def test_zspace_caches_by_dims_tuple(self):
        space = ZSpace([3, 3, 3])
        assert space.tetris((0, 1)) is space.tetris((0, 1))
        assert space.tetris((0, 1)) is not space.tetris((1, 0))
        assert space.tetris(0) is space.tetris(0)


def build_tree(bits=(4, 4, 4), count=300, seed=9, page_capacity=4):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace(bits), page_capacity=page_capacity)
    rng = random.Random(seed)
    points = []
    for index in range(count):
        point = tuple(rng.randrange(1 << b) for b in bits)
        points.append(point)
        tree.insert(point, index)
    return tree, points


class TestCompositeTetris:
    def test_sorted_by_composite_key(self):
        tree, points = build_tree()
        box = QueryBox((1, 0, 2), (14, 15, 13))
        out = list(tetris_sorted(tree, box, (1, 2)))
        keys = [(p[1], p[2]) for p, _ in out]
        assert keys == sorted(keys)
        assert len(out) == sum(1 for p in points if box.contains_point(p))

    def test_descending_composite(self):
        tree, points = build_tree()
        box = QueryBox.full(tree.space.coord_max)
        out = list(tetris_sorted(tree, box, (2, 0), descending=True))
        keys = [(p[2], p[0]) for p, _ in out]
        assert keys == sorted(keys, reverse=True)

    def test_strategies_agree_on_composite(self):
        tree, _ = build_tree(count=200)
        box = QueryBox((0, 3, 0), (15, 12, 15))
        sweep = tetris_sorted(tree, box, (0, 2), strategy="sweep")
        eager = tetris_sorted(tree, box, (0, 2), strategy="eager")
        assert list(sweep) == list(eager)
        assert sweep.page_access_order == eager.page_access_order

    def test_single_dim_equals_one_tuple(self):
        tree, _ = build_tree(count=150)
        box = QueryBox.full(tree.space.coord_max)
        single = list(tetris_sorted(tree, box, 1))
        as_tuple = list(tetris_sorted(tree, box, (1,)))
        assert single == as_tuple

    def test_each_page_once_still_holds(self):
        tree, _ = build_tree(count=250)
        box = QueryBox((2, 2, 2), (13, 13, 13))
        scan = tetris_sorted(tree, box, (1, 0))
        list(scan)
        assert len(scan.page_access_order) == len(set(scan.page_access_order))

    def test_rejects_bad_composite(self):
        tree, _ = build_tree(count=10)
        box = QueryBox.full(tree.space.coord_max)
        with pytest.raises(ValueError):
            tetris_sorted(tree, box, (0, 0))
        with pytest.raises(ValueError):
            tetris_sorted(tree, box, ())
        with pytest.raises(ValueError):
            tetris_sorted(tree, box, (0, 7))


class TestTableCompositeSort:
    def test_sort_attr_sequence(self):
        schema = Schema(
            [
                Attribute("a", IntEncoder(0, 31)),
                Attribute("b", IntEncoder(0, 31)),
                Attribute("c", IntEncoder(0, 999)),
            ]
        )
        db = Database()
        table = db.create_ub_table("t", schema, dims=("a", "b"), page_capacity=8)
        rng = random.Random(10)
        rows = [(rng.randrange(32), rng.randrange(32), i) for i in range(200)]
        table.load(rows)
        out = [row for _, row in table.tetris_scan(None, ("b", "a"))]
        keys = [(r[1], r[0]) for r in out]
        assert keys == sorted(keys)
        assert len(out) == 200


@st.composite
def composite_cases(draw):
    dims = draw(st.integers(2, 4))
    bits = tuple(draw(st.integers(2, 3)) for _ in range(dims))
    count = draw(st.integers(0, 60))
    seed = draw(st.integers(0, 5000))
    order = draw(st.permutations(range(dims)))
    prefix_len = draw(st.integers(1, dims))
    return bits, count, seed, tuple(order[:prefix_len])


@given(composite_cases())
@settings(max_examples=50, deadline=None)
def test_composite_property(case):
    bits, count, seed, sort_dims = case
    tree, points = build_tree(bits=bits, count=count, seed=seed)
    box = QueryBox.full(tree.space.coord_max)
    out = list(tetris_sorted(tree, box, sort_dims))
    keys = [tuple(p[d] for d in sort_dims) for p, _ in out]
    assert keys == sorted(keys)
    assert len(out) == len(points)
