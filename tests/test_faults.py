"""Tests for the resilience layer: faults, checksums, retries, quarantine,
typed errors and graceful plan degradation."""

import pytest

from repro.costmodel import CostParameters
from repro.planner import (
    PhysicalDesign,
    PlanExhaustedError,
    execute_sorted_query,
    plan_sorted_query,
)
from repro.storage import (
    BufferPool,
    CorruptPageError,
    FaultPlan,
    FaultyDisk,
    MissingPageError,
    QuarantinedPageError,
    RetryPolicy,
    SimulatedDisk,
    StorageError,
    TransientIOError,
    read_page_resilient,
)
from repro.storage.faults import CORRUPT, LATENCY, TORN, TRANSIENT
from tools.chaos import build_world


def make_disk(plan=None, pages=4, capacity=8):
    disk = FaultyDisk(plan=plan)
    for index in range(pages):
        page = disk.allocate(capacity)
        for slot in range(capacity):
            page.add((index, slot))
    return disk


# ----------------------------------------------------------------------
# FaultPlan: determinism and validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan(seed=7, transient_rate=0.2, corrupt_rate=0.1)
        plan_b = FaultPlan(seed=7, transient_rate=0.2, corrupt_rate=0.1)
        draws_a = [plan_a.read_fault(p, a) for p in range(50) for a in range(4)]
        draws_b = [plan_b.read_fault(p, a) for p in range(50) for a in range(4)]
        assert draws_a == draws_b
        assert any(kind is not None for kind in draws_a)

    def test_different_seed_different_schedule(self):
        plan_a = FaultPlan(seed=1, transient_rate=0.3)
        plan_b = FaultPlan(seed=2, transient_rate=0.3)
        draws_a = [plan_a.read_fault(p, 0) for p in range(200)]
        draws_b = [plan_b.read_fault(p, 0) for p in range(200)]
        assert draws_a != draws_b

    def test_rates_approximate_frequency(self):
        plan = FaultPlan(seed=3, transient_rate=0.25)
        hits = sum(
            plan.read_fault(p, a) == TRANSIENT
            for p in range(100)
            for a in range(10)
        )
        assert 150 < hits < 350  # 1000 draws at rate 0.25

    def test_scripted_faults_take_precedence(self):
        plan = FaultPlan(seed=0, scripted_reads=((5, 1, CORRUPT),))
        assert plan.read_fault(5, 1) == CORRUPT
        assert plan.read_fault(5, 0) is None
        assert plan.read_fault(4, 1) is None

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(transient_rate=0.1).is_empty
        assert not FaultPlan(scripted_writes=((0, 0, TORN),)).is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=0.6, corrupt_rate=0.6)
        with pytest.raises(ValueError):
            FaultPlan(scripted_reads=((0, 0, "meteor"),))
        with pytest.raises(ValueError):
            FaultPlan(scripted_writes=((0, 0, TRANSIENT),))  # not a write kind


# ----------------------------------------------------------------------
# FaultyDisk: injection mechanics
# ----------------------------------------------------------------------
class TestFaultyDisk:
    def test_disarmed_wrapper_never_faults(self):
        disk = make_disk(FaultPlan(seed=0, transient_rate=1.0))
        for _ in range(5):
            disk.read(0)  # armed=False: pure delegation
        assert disk.fault_log == []
        assert disk.stats.faults.total_injected == 0

    def test_transient_fault_raises_and_charges_clock(self):
        disk = make_disk(FaultPlan(seed=0, scripted_reads=((0, 0, TRANSIENT),)))
        disk.arm()
        before = disk.clock
        with pytest.raises(TransientIOError):
            disk.read(0)
        assert disk.clock == pytest.approx(
            before + disk.params.t_pi + disk.params.t_tau
        )
        assert disk.stats.faults.transient_errors == 1
        # the next access of the same page succeeds (access count advanced)
        assert disk.read(0).records

    def test_corrupt_fault_detected_by_checksum(self):
        disk = make_disk(FaultPlan(seed=0, scripted_reads=((1, 0, CORRUPT),)))
        disk.arm()
        page = disk.read(1)
        assert page.stored_checksum is not None
        assert not page.verify_checksum()
        assert ("__bitrot__", 1, 0) in page.records
        assert disk.stats.faults.corrupt_reads == 1

    def test_torn_write_detected_on_next_read(self):
        disk = make_disk(FaultPlan(seed=0, scripted_writes=((2, 0, TORN),)))
        disk.arm()
        page = disk.peek(2)
        full = len(page.records)
        disk.write(page)
        assert len(page.records) == full // 2
        assert not page.verify_checksum()
        assert disk.stats.faults.torn_writes == 1
        with pytest.raises(CorruptPageError):
            read_page_resilient(disk, 2, policy=RetryPolicy(max_retries=0))

    def test_latency_spike_advances_clock(self):
        plan = FaultPlan(
            seed=0, scripted_reads=((3, 0, LATENCY),), latency_seconds=0.5
        )
        disk = make_disk(plan)
        disk.arm()
        before = disk.clock
        disk.read(3)
        assert disk.clock == pytest.approx(
            before + 0.5 + disk.params.t_pi + disk.params.t_tau
        )
        assert disk.stats.faults.latency_spikes == 1

    def test_replay_is_exact(self):
        def run():
            disk = make_disk(FaultPlan(seed=9, transient_rate=0.3))
            disk.arm()
            for page_id in [0, 1, 2, 3, 0, 1, 2, 3]:
                try:
                    disk.read(page_id)
                except TransientIOError:
                    pass
            return disk.fault_log

        assert run() == run()

    def test_access_counts_tick_only_while_armed(self):
        plan = FaultPlan(seed=0, scripted_reads=((0, 0, TRANSIENT),))
        disk = make_disk(plan)
        disk.read(0)  # disarmed: does not consume access #0
        disk.arm()
        with pytest.raises(TransientIOError):
            disk.read(0)

    def test_injecting_context_manager(self):
        disk = make_disk(FaultPlan(seed=0, transient_rate=1.0))
        with disk.injecting():
            assert disk.armed
            with pytest.raises(TransientIOError):
                disk.read(0)
        assert not disk.armed

    def test_is_a_simulated_disk(self):
        assert isinstance(make_disk(), SimulatedDisk)


# ----------------------------------------------------------------------
# typed errors
# ----------------------------------------------------------------------
class TestTypedErrors:
    def test_missing_page_is_storage_and_key_error(self):
        disk = SimulatedDisk()
        with pytest.raises(MissingPageError):
            disk.read(99)
        with pytest.raises(KeyError):  # backward compatibility
            disk.read(99)
        with pytest.raises(StorageError):
            disk.peek(99)
        page = disk.allocate(4)
        disk.free(page.page_id)
        with pytest.raises(MissingPageError):
            disk.write(page)

    def test_missing_page_message_unquoted(self):
        disk = SimulatedDisk()
        with pytest.raises(MissingPageError) as excinfo:
            disk.read(42)
        assert str(excinfo.value) == "no page at address 42"

    def test_hierarchy(self):
        for exc in (TransientIOError, CorruptPageError, QuarantinedPageError):
            assert issubclass(exc, StorageError)
        assert not issubclass(TransientIOError, KeyError)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_schedule_capped(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.01, multiplier=2.0, max_delay=0.03
        )
        assert list(policy.delays()) == pytest.approx(
            [0.01, 0.02, 0.03, 0.03, 0.03]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_read_page_resilient_retries_on_simulated_clock(self):
        plan = FaultPlan(
            seed=0, scripted_reads=((0, 0, TRANSIENT), (0, 1, TRANSIENT))
        )
        disk = make_disk(plan)
        disk.arm()
        policy = RetryPolicy(
            max_retries=2, base_delay=0.1, multiplier=2.0, max_delay=1.0
        )
        before = disk.clock
        page, retries = read_page_resilient(disk, 0, policy=policy)
        assert retries == 2
        assert page.records
        # two failed attempts charged t_pi+t_tau each, two backoff delays
        # (0.1 + 0.2), one successful priced read
        expected = 3 * (disk.params.t_pi + disk.params.t_tau) + 0.1 + 0.2
        assert disk.clock - before == pytest.approx(expected)
        assert disk.stats.faults.retries == 2
        assert disk.stats.faults.retry_delay == pytest.approx(0.3)

    def test_read_page_resilient_exhausts(self):
        plan = FaultPlan(seed=0, transient_rate=1.0)
        disk = make_disk(plan)
        disk.arm()
        with pytest.raises(TransientIOError):
            read_page_resilient(disk, 0, policy=RetryPolicy(max_retries=1))


# ----------------------------------------------------------------------
# buffer pool quarantine
# ----------------------------------------------------------------------
class TestBufferQuarantine:
    def pool(self, plan, threshold=2, retries=0):
        disk = make_disk(plan)
        disk.arm()
        return (
            disk,
            BufferPool(
                disk,
                capacity=8,
                retry_policy=RetryPolicy(max_retries=retries),
                quarantine_threshold=threshold,
            ),
        )

    def test_transient_retry_then_hit(self):
        disk, pool = self.pool(
            FaultPlan(seed=0, scripted_reads=((0, 0, TRANSIENT),)), retries=1
        )
        page = pool.get(0)
        assert page.records
        assert pool.retry_attempts == 1
        assert pool.disk_fetches == pool.misses + pool.retry_attempts
        assert pool.get(0) is page  # now cached
        assert pool.hits == 1

    def test_quarantine_after_repeated_failures(self):
        disk, pool = self.pool(FaultPlan(seed=0, transient_rate=1.0), threshold=2)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                pool.get(0)
        assert pool.is_quarantined(0)
        with pytest.raises(QuarantinedPageError):
            pool.get(0)  # no disk touch
        assert pool.rejected == 1
        assert disk.stats.faults.quarantined_pages == 1
        assert pool.hits + pool.misses + pool.rejected == pool.lookups

    def test_corruption_quarantines_immediately(self):
        disk, pool = self.pool(
            FaultPlan(seed=0, scripted_reads=((1, 0, CORRUPT),)), threshold=3
        )
        with pytest.raises(CorruptPageError):
            pool.get(1)
        assert pool.is_quarantined(1)
        assert 1 not in pool
        with pytest.raises(QuarantinedPageError):
            pool.get(1)

    def test_put_refuses_quarantined_page(self):
        disk, pool = self.pool(
            FaultPlan(seed=0, scripted_reads=((1, 0, CORRUPT),)), threshold=3
        )
        with pytest.raises(CorruptPageError):
            pool.get(1)
        with pytest.raises(QuarantinedPageError):
            pool.put(disk.peek(1))

    def test_quarantine_survives_drop_all(self):
        disk, pool = self.pool(FaultPlan(seed=0, transient_rate=1.0), threshold=1)
        with pytest.raises(TransientIOError):
            pool.get(0)
        pool.drop_all()
        with pytest.raises(QuarantinedPageError):
            pool.get(0)


# ----------------------------------------------------------------------
# graceful plan degradation
# ----------------------------------------------------------------------
PARAMS = CostParameters(memory_pages=8)


class TestDegradation:
    def faulty_world(self):
        """A world whose FaultyDisk carries a swappable (empty) plan."""
        return build_world(FaultPlan(), rows=600)

    def expected(self, data, lo=100, hi=900):
        return sorted(
            (row for row in data if lo <= row[0] <= hi), key=lambda row: row[1]
        )

    def first_plan_pages(self, design):
        plan = plan_sorted_query(design, {"a1": (100, 900)}, "a2", PARAMS)
        return plan.choice.method

    def test_fault_free_plan_has_no_degradations(self):
        db, design, data = build_world(rows=600)
        result = execute_sorted_query(design, {"a1": (100, 900)}, "a2", PARAMS)
        assert not result.degraded
        assert sorted(result.rows) == sorted(self.expected(data))

    def test_degrades_to_surviving_instance_with_correct_rows(self):
        db, design, data = self.faulty_world()
        # corrupt the first page the initial plan touches, whatever it is
        method = self.first_plan_pages(design)
        target = {
            "fts-sort": design.heap.heap.page_ids[0],
            "tetris": None,
        }.get(method)
        if target is None:
            pytest.skip(f"initial plan {method} not scriptable here")
        db.disk.plan = FaultPlan(seed=0, scripted_reads=((target, 0, CORRUPT),))
        db.arm_faults()
        result = execute_sorted_query(design, {"a1": (100, 900)}, "a2", PARAMS)
        db.disarm_faults()
        assert result.degraded
        assert len(result.degradations) == 1
        event = result.degradations[0]
        assert event.method == "fts-sort"
        assert event.error_type == "CorruptPageError"
        assert event.fallback_method is not None
        assert result.plan.choice.method == event.fallback_method
        assert sorted(result.rows) == sorted(self.expected(data))
        # degraded order is still monotone in the sort attribute
        keys = [row[1] for row in result.rows]
        assert keys == sorted(keys)

    def test_every_instance_failing_raises_plan_exhausted(self):
        db, design, data = self.faulty_world()
        db.disk.plan = FaultPlan(seed=0, transient_rate=1.0)
        db.arm_faults()
        with pytest.raises(PlanExhaustedError) as excinfo:
            execute_sorted_query(design, {"a1": (100, 900)}, "a2", PARAMS)
        db.disarm_faults()
        error = excinfo.value
        assert isinstance(error, StorageError)
        assert len(error.degradations) >= 1
        assert error.degradations[-1].fallback_method is None
        methods = {event.method for event in error.degradations}
        assert "fts-sort" in methods  # the last resort was tried and failed

    def test_single_instance_design_exhausts_in_one_step(self):
        db, design, data = self.faulty_world()
        solo = PhysicalDesign(attributes=("a1", "a2"), heap=design.heap)
        db.disk.plan = FaultPlan(seed=0, transient_rate=1.0)
        db.arm_faults()
        with pytest.raises(PlanExhaustedError) as excinfo:
            execute_sorted_query(solo, {"a1": (100, 900)}, "a2", PARAMS)
        db.disarm_faults()
        assert len(excinfo.value.degradations) == 1

    def test_degradation_event_describe(self):
        from repro.planner import DegradationEvent

        event = DegradationEvent(
            method="tetris",
            instance="ub",
            error_type="CorruptPageError",
            error="boom",
            fallback_method="fts-sort",
            fallback_instance="heap",
        )
        text = event.describe()
        assert "tetris on ub" in text
        assert "fell back to fts-sort on heap" in text


# ----------------------------------------------------------------------
# benchmark guard
# ----------------------------------------------------------------------
class TestBenchmarkGuard:
    def test_refuses_timing_with_armed_fault_plan(self):
        """benchmarks/ must not time runs with live fault injection."""
        import importlib
        import sys
        from pathlib import Path

        from repro import invariants

        bench_dir = str(Path(__file__).resolve().parent.parent / "benchmarks")
        was_enabled = invariants.enabled()
        invariants.set_enabled(False)  # _support refuses import otherwise
        sys.path.insert(0, bench_dir)
        disk = FaultyDisk(plan=FaultPlan(transient_rate=0.1))
        try:
            support = importlib.import_module("_support")
            support.ensure_fault_free()  # disarmed: fine
            disk.arm()
            with pytest.raises(RuntimeError, match="fault-free"):
                support.ensure_fault_free()
            with pytest.raises(RuntimeError, match="fault-free"):
                support.report("guard_probe", "never written")
            disk.disarm()
            support.ensure_fault_free()
        finally:
            disk.disarm()
            sys.path.remove(bench_dir)
            invariants.set_enabled(was_enabled)
