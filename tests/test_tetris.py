"""Tests for the Tetris algorithm: order, single-access, equivalence, stats."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QueryBox, TetrisScan, UBTree, ZSpace, tetris_sorted
from repro.core.query_space import ComparisonSpace, IntersectionSpace, PredicateSpace
from repro.storage import BufferPool, SimulatedDisk

STRATEGIES = ("sweep", "eager")


def make_ubtree(bits=(4, 4), page_capacity=4, buffer_pages=512):
    disk = SimulatedDisk()
    pool = BufferPool(disk, buffer_pages)
    return UBTree(pool, ZSpace(bits), page_capacity=page_capacity), disk


def fill(ubtree, count, seed=0, bits=(4, 4)):
    rng = random.Random(seed)
    points = []
    for index in range(count):
        point = tuple(rng.randrange(1 << b) for b in bits)
        points.append(point)
        ubtree.insert(point, index)
    return points


def expected_sorted(points, box, dim, descending=False):
    inside = [(p, i) for i, p in enumerate(points) if box.contains_point(p)]
    inside.sort(key=lambda entry: entry[0][dim], reverse=descending)
    return inside


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestSortedOutput:
    def test_full_universe_sorted(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 120, seed=1)
        box = QueryBox.full(ubtree.space.coord_max)
        for dim in (0, 1):
            out = list(tetris_sorted(ubtree, box, dim, strategy=strategy))
            values = [p[dim] for p, _ in out]
            assert values == sorted(values)
            assert len(out) == len(points)

    def test_restricted_sorted(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 150, seed=2)
        box = QueryBox((3, 2), (12, 13))
        out = list(tetris_sorted(ubtree, box, 1, strategy=strategy))
        assert [p[1] for p, _ in out] == sorted(p[1] for p, _ in out)
        assert sorted(map(repr, out)) == sorted(
            map(repr, expected_sorted(points, box, 1))
        )

    def test_descending(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 100, seed=3)
        box = QueryBox((1, 1), (14, 14))
        out = list(
            tetris_sorted(ubtree, box, 0, descending=True, strategy=strategy)
        )
        values = [p[0] for p, _ in out]
        assert values == sorted(values, reverse=True)
        assert len(out) == len(expected_sorted(points, box, 0))

    def test_empty_result(self, strategy):
        ubtree, _ = make_ubtree()
        fill(ubtree, 20, seed=4)
        empty = QueryBox((9, 9), (3, 3))
        scan = tetris_sorted(ubtree, empty, 0, strategy=strategy)
        assert list(scan) == []
        assert scan.stats.regions_read == 0

    def test_empty_table(self, strategy):
        ubtree, _ = make_ubtree()
        box = QueryBox.full(ubtree.space.coord_max)
        out = list(tetris_sorted(ubtree, box, 1, strategy=strategy))
        assert out == []

    def test_three_dimensions(self, strategy):
        ubtree, _ = make_ubtree(bits=(3, 3, 3), page_capacity=4)
        points = fill(ubtree, 150, seed=5, bits=(3, 3, 3))
        box = QueryBox((0, 2, 1), (7, 6, 5))
        for dim in range(3):
            out = list(tetris_sorted(ubtree, box, dim, strategy=strategy))
            values = [p[dim] for p, _ in out]
            assert values == sorted(values)
            assert len(out) == len(expected_sorted(points, box, dim))

    def test_unequal_bit_lengths(self, strategy):
        ubtree, _ = make_ubtree(bits=(2, 6), page_capacity=3)
        points = fill(ubtree, 120, seed=6, bits=(2, 6))
        box = QueryBox((0, 10), (3, 50))
        out = list(tetris_sorted(ubtree, box, 1, strategy=strategy))
        assert [p[1] for p, _ in out] == sorted(p[1] for p, _ in out)
        assert len(out) == len(expected_sorted(points, box, 1))

    def test_stable_payloads_preserved(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        ubtree.insert((2, 2), "a")
        ubtree.insert((2, 2), "b")
        box = QueryBox.full(ubtree.space.coord_max)
        out = list(tetris_sorted(ubtree, box, 0, strategy=strategy))
        assert sorted(payload for _, payload in out) == ["a", "b"]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestIOBehaviour:
    def test_each_page_read_exactly_once(self, strategy):
        ubtree, disk = make_ubtree(page_capacity=3, buffer_pages=4)
        fill(ubtree, 200, seed=7)
        ubtree.tree.buffer.drop_all()
        box = QueryBox((2, 2), (13, 13))
        scan = tetris_sorted(ubtree, box, 1, strategy=strategy)
        before = disk.snapshot()
        list(scan)
        delta = disk.snapshot() - before
        # no page id repeats, and priced reads equal distinct pages
        assert len(scan.page_access_order) == len(set(scan.page_access_order))
        assert delta.pages_read == len(scan.page_access_order)
        assert delta.read_seeks == delta.pages_read  # all random accesses
        assert delta.pages_written == 0  # no external sort

    def test_reads_only_overlapping_regions(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=2)
        fill(ubtree, 150, seed=8)
        box = QueryBox((0, 0), (3, 3))  # small corner
        scan = tetris_sorted(ubtree, box, 0, strategy=strategy)
        list(scan)
        overlapping = sum(1 for _ in ubtree.regions_overlapping(box))
        assert scan.stats.regions_read == overlapping
        assert scan.stats.regions_read < ubtree.region_count

    def test_cache_smaller_than_result(self, strategy):
        ubtree, _ = make_ubtree(bits=(6, 6), page_capacity=4)
        points = fill(ubtree, 600, seed=9, bits=(6, 6))
        box = QueryBox.full(ubtree.space.coord_max)
        scan = tetris_sorted(ubtree, box, 1, strategy=strategy)
        out = list(scan)
        # the Tetris cache holds one slice, far less than the result
        assert scan.stats.max_cache_tuples < len(out)

    def test_first_output_before_last_read(self, strategy):
        ubtree, disk = make_ubtree(bits=(5, 5), page_capacity=3)
        fill(ubtree, 400, seed=10, bits=(5, 5))
        ubtree.tree.buffer.drop_all()
        box = QueryBox.full(ubtree.space.coord_max)
        scan = tetris_sorted(ubtree, box, 0, strategy=strategy)
        iterator = iter(scan)
        next(iterator)
        first_clock = disk.clock
        for _ in iterator:
            pass
        assert first_clock < disk.clock  # pipelined: output before the end
        assert scan.stats.time_to_first is not None
        assert scan.stats.time_to_first < scan.stats.elapsed

    def test_slices_counted(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        fill(ubtree, 120, seed=11)
        box = QueryBox.full(ubtree.space.coord_max)
        scan = tetris_sorted(ubtree, box, 1, strategy=strategy)
        list(scan)
        assert scan.stats.slices >= 2
        assert scan.stats.cache_pages(3) >= 1


class TestStrategyEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_pages_same_stream(self, seed):
        ubtree, _ = make_ubtree(page_capacity=3)
        fill(ubtree, 150, seed=seed)
        rng = random.Random(seed + 100)
        lo = (rng.randrange(8), rng.randrange(8))
        hi = tuple(rng.randrange(l, 16) for l in lo)
        box = QueryBox(lo, hi)
        for dim in (0, 1):
            sweep = tetris_sorted(ubtree, box, dim, strategy="sweep")
            eager = tetris_sorted(ubtree, box, dim, strategy="eager")
            sweep_out = list(sweep)
            eager_out = list(eager)
            assert sweep_out == eager_out
            assert sweep.page_access_order == eager.page_access_order
            assert sweep.stats.regions_read == eager.stats.regions_read

    def test_equivalence_on_triangular_space(self):
        ubtree, _ = make_ubtree(page_capacity=3)
        fill(ubtree, 150, seed=42)
        space = IntersectionSpace(
            [QueryBox.full(ubtree.space.coord_max), ComparisonSpace(2, 0, "<", 1)]
        )
        sweep = tetris_sorted(ubtree, space, 1, strategy="sweep")
        eager = tetris_sorted(ubtree, space, 1, strategy="eager")
        assert list(sweep) == list(eager)
        assert sweep.page_access_order == eager.page_access_order

    def test_equivalence_descending(self):
        ubtree, _ = make_ubtree(page_capacity=3)
        fill(ubtree, 120, seed=43)
        box = QueryBox((1, 0), (13, 15))
        sweep = tetris_sorted(ubtree, box, 0, descending=True, strategy="sweep")
        eager = tetris_sorted(ubtree, box, 0, descending=True, strategy="eager")
        assert list(sweep) == list(eager)
        assert sweep.page_access_order == eager.page_access_order


class TestNonRectangularSpaces:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_triangular_output(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 200, seed=12)
        space = IntersectionSpace(
            [QueryBox.full(ubtree.space.coord_max), ComparisonSpace(2, 0, "<", 1)]
        )
        out = list(tetris_sorted(ubtree, space, 1, strategy=strategy))
        assert [p[1] for p, _ in out] == sorted(p[1] for p, _ in out)
        expected = sorted((p, i) for i, p in enumerate(points) if p[0] < p[1])
        assert sorted(out) == expected

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_triangular_skips_regions(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        fill(ubtree, 300, seed=13)
        space = IntersectionSpace(
            [QueryBox.full(ubtree.space.coord_max), ComparisonSpace(2, 0, ">", 1)]
        )
        scan = tetris_sorted(ubtree, space, 0, strategy=strategy)
        list(scan)
        assert scan.stats.regions_skipped > 0
        assert scan.stats.regions_read < ubtree.region_count

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_predicate_space_no_pruning_but_correct(self, strategy):
        ubtree, _ = make_ubtree(page_capacity=3)
        points = fill(ubtree, 100, seed=14)
        space = IntersectionSpace(
            [
                QueryBox.full(ubtree.space.coord_max),
                PredicateSpace(2, lambda p: (p[0] + p[1]) % 3 == 0),
            ]
        )
        out = list(tetris_sorted(ubtree, space, 0, strategy=strategy))
        expected = sorted(
            ((p, i) for i, p in enumerate(points) if (p[0] + p[1]) % 3 == 0),
            key=lambda e: e[0][0],
        )
        assert len(out) == len(expected)
        assert [p[0] for p, _ in out] == [p[0] for p, _ in expected]


class TestValidation:
    def test_rejects_unknown_strategy(self):
        ubtree, _ = make_ubtree()
        box = QueryBox.full(ubtree.space.coord_max)
        with pytest.raises(ValueError):
            TetrisScan(ubtree, box, 0, strategy="magic")

    def test_rejects_bad_sort_dim(self):
        ubtree, _ = make_ubtree()
        box = QueryBox.full(ubtree.space.coord_max)
        with pytest.raises(ValueError):
            TetrisScan(ubtree, box, 5)


@st.composite
def tetris_cases(draw):
    dims = draw(st.integers(2, 3))
    bits = tuple(draw(st.integers(2, 4)) for _ in range(dims))
    count = draw(st.integers(0, 80))
    seed = draw(st.integers(0, 10_000))
    lo = tuple(draw(st.integers(0, (1 << b) - 1)) for b in bits)
    hi = tuple(draw(st.integers(low, (1 << b) - 1)) for low, b in zip(lo, bits))
    dim = draw(st.integers(0, dims - 1))
    descending = draw(st.booleans())
    return bits, count, seed, lo, hi, dim, descending


@given(tetris_cases())
@settings(max_examples=60, deadline=None)
def test_tetris_property(case):
    """Both strategies produce the same, correctly sorted, complete stream."""
    bits, count, seed, lo, hi, dim, descending = case
    ubtree, _ = make_ubtree(bits=bits, page_capacity=3)
    points = fill(ubtree, count, seed=seed, bits=bits)
    box = QueryBox(lo, hi)
    sweep = tetris_sorted(ubtree, box, dim, descending=descending, strategy="sweep")
    eager = tetris_sorted(ubtree, box, dim, descending=descending, strategy="eager")
    sweep_out = list(sweep)
    assert sweep_out == list(eager)
    assert sweep.page_access_order == eager.page_access_order
    values = [p[dim] for p, _ in sweep_out]
    assert values == sorted(values, reverse=descending)
    expected = expected_sorted(points, box, dim, descending)
    assert len(sweep_out) == len(expected)
    assert sorted(map(repr, sweep_out)) == sorted(map(repr, expected))
