"""Tests for the relational operators: sort, joins, grouping, plumbing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.operators import (
    Avg,
    Count,
    ExternalMergeSort,
    FirstTupleTimer,
    HashJoin,
    InMemorySort,
    KWayMerge,
    Limit,
    Max,
    MergeJoin,
    MergeSemiJoin,
    Min,
    Project,
    ScalarAggregate,
    Select,
    SortedGroupBy,
    Sum,
)
from repro.storage import DiskParameters, SimulatedDisk


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_select(self):
        out = list(Select([(1,), (2,), (3,)], lambda r: r[0] % 2 == 1))
        assert out == [(1,), (3,)]

    def test_project(self):
        out = list(Project([(1, 2), (3, 4)], lambda r: (r[1],)))
        assert out == [(2,), (4,)]

    def test_limit(self):
        out = list(Limit(iter([(i,) for i in range(10)]), 3))
        assert out == [(0,), (1,), (2,)]

    def test_limit_larger_than_input(self):
        assert list(Limit([(1,)], 5)) == [(1,)]

    def test_in_memory_sort(self):
        rows = [(3,), (1,), (2,)]
        assert list(InMemorySort(rows, key=lambda r: r[0])) == [(1,), (2,), (3,)]
        assert list(InMemorySort(rows, key=lambda r: r[0], descending=True)) == [
            (3,),
            (2,),
            (1,),
        ]

    def test_first_tuple_timer(self):
        disk = SimulatedDisk()

        def stream():
            disk.advance_clock(1.0)
            yield (1,)
            disk.advance_clock(2.0)
            yield (2,)

        timer = FirstTupleTimer(stream(), disk)
        assert list(timer) == [(1,), (2,)]
        assert timer.time_to_first == pytest.approx(1.0)
        assert timer.elapsed == pytest.approx(3.0)
        assert timer.row_count == 2

    def test_first_tuple_timer_empty(self):
        disk = SimulatedDisk()
        timer = FirstTupleTimer([], disk)
        assert list(timer) == []
        assert timer.time_to_first is None
        assert timer.elapsed == pytest.approx(0.0)


# ----------------------------------------------------------------------
# external merge sort
# ----------------------------------------------------------------------
def run_sort(rows, memory_pages=2, page_capacity=4, merge_degree=2, descending=False):
    disk = SimulatedDisk(DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=4))
    sort = ExternalMergeSort(
        rows,
        key=lambda r: r[0],
        disk=disk,
        memory_pages=memory_pages,
        page_capacity=page_capacity,
        merge_degree=merge_degree,
        descending=descending,
    )
    return list(sort), sort, disk


class TestExternalMergeSort:
    def test_fits_in_memory_no_spill(self):
        rows = [(i,) for i in range(5)]
        random.Random(0).shuffle(rows)
        out, sort, disk = run_sort(rows, memory_pages=4, page_capacity=4)
        assert out == [(i,) for i in range(5)]
        assert not sort.stats.spilled
        assert disk.stats.pages_written == 0

    def test_spills_and_sorts(self):
        rows = [(i,) for i in range(100)]
        random.Random(1).shuffle(rows)
        out, sort, disk = run_sort(rows, memory_pages=2, page_capacity=4)
        assert out == [(i,) for i in range(100)]
        assert sort.stats.spilled
        assert sort.stats.runs_created == 13  # ceil(100 / 8)
        assert disk.stats.category("temp").pages_written > 0

    def test_descending(self):
        rows = [(i,) for i in range(50)]
        random.Random(2).shuffle(rows)
        out, _, _ = run_sort(rows, descending=True)
        assert out == [(i,) for i in range(49, -1, -1)]

    def test_duplicates_preserved(self):
        rows = [(1,), (1,), (2,), (1,)]
        out, _, _ = run_sort(rows, memory_pages=1, page_capacity=2)
        assert out == [(1,), (1,), (1,), (2,)]

    def test_higher_merge_degree_fewer_passes(self):
        rows = [(i,) for i in range(200)]
        random.Random(3).shuffle(rows)
        _, binary, _ = run_sort(list(rows), memory_pages=1, page_capacity=4, merge_degree=2)
        _, wide, _ = run_sort(list(rows), memory_pages=1, page_capacity=4, merge_degree=8)
        assert wide.stats.merge_passes < binary.stats.merge_passes

    def test_temp_pages_freed_after_completion(self):
        rows = [(i,) for i in range(100)]
        random.Random(4).shuffle(rows)
        disk = SimulatedDisk()
        sort = ExternalMergeSort(
            rows, key=lambda r: r[0], disk=disk, memory_pages=1, page_capacity=4
        )
        allocated_before = disk.allocated_pages
        list(sort)
        # all temp pages are dropped again (only extent remainders differ)
        assert sort._live_temp_pages == 0

    def test_peak_temp_tracks_both_generations(self):
        rows = [(i,) for i in range(128)]
        random.Random(5).shuffle(rows)
        out, sort, _ = run_sort(rows, memory_pages=1, page_capacity=4)
        data_pages = 128 // 4
        assert sort.stats.peak_temp_pages >= data_pages
        assert out == sorted(out)

    def test_temp_writes_priced_sequentially(self):
        rows = [(i,) for i in range(64)]
        random.Random(6).shuffle(rows)
        _, _, disk = run_sort(rows, memory_pages=2, page_capacity=4)
        temp = disk.stats.category("temp")
        # far fewer seeks than pages: prefetch-sized sequential bursts
        assert temp.write_seeks < temp.pages_written
        assert temp.read_seeks < temp.pages_read

    def test_blocking_behaviour(self):
        """No output row appears before all input was consumed (when spilling)."""
        consumed = []

        def source():
            for i in range(40):
                consumed.append(i)
                yield (40 - i,)

        disk = SimulatedDisk()
        sort = ExternalMergeSort(
            source(), key=lambda r: r[0], disk=disk, memory_pages=1, page_capacity=4
        )
        iterator = iter(sort)
        next(iterator)
        assert len(consumed) == 40

    def test_rejects_bad_parameters(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            ExternalMergeSort([], key=lambda r: r, disk=disk, memory_pages=0, page_capacity=4)
        with pytest.raises(ValueError):
            ExternalMergeSort(
                [], key=lambda r: r, disk=disk, memory_pages=1, page_capacity=4, merge_degree=1
            )


@given(
    st.lists(st.integers(0, 100), max_size=300),
    st.integers(1, 3),
    st.integers(2, 4),
)
@settings(max_examples=60, deadline=None)
def test_external_sort_matches_sorted(values, memory_pages, merge_degree):
    rows = [(v,) for v in values]
    out, _, _ = run_sort(
        rows, memory_pages=memory_pages, page_capacity=4, merge_degree=merge_degree
    )
    assert out == sorted(rows, key=lambda r: r[0])


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
class TestJoins:
    def test_merge_join_basic(self):
        left = [(1, "a"), (2, "b"), (4, "d")]
        right = [(2, "x"), (3, "y"), (4, "z")]
        out = list(
            MergeJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
        )
        assert out == [(2, "b", 2, "x"), (4, "d", 4, "z")]

    def test_merge_join_duplicates_cross_product(self):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x"), (1, "y"), (1, "z")]
        out = list(
            MergeJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
        )
        assert len(out) == 6

    def test_merge_join_empty_sides(self):
        assert list(MergeJoin([], [(1,)], lambda r: r[0], lambda r: r[0])) == []
        assert list(MergeJoin([(1,)], [], lambda r: r[0], lambda r: r[0])) == []

    def test_merge_join_custom_combine(self):
        out = list(
            MergeJoin(
                [(1, "a")],
                [(1, "x")],
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
                combine=lambda l, r: (l[1], r[1]),
            )
        )
        assert out == [("a", "x")]

    def test_hash_join_matches_merge_join(self):
        rng = random.Random(7)
        left = sorted((rng.randrange(20), i) for i in range(50))
        right = sorted((rng.randrange(20), i) for i in range(50))
        merge = list(
            MergeJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
        )
        hashed = list(
            HashJoin(left, right, build_key=lambda r: r[0], probe_key=lambda r: r[0])
        )
        assert sorted(merge) == sorted(hashed)

    def test_merge_semi_join(self):
        left = [(1,), (2,), (3,), (4,)]
        right = [(2,), (2,), (4,), (9,)]
        out = list(
            MergeSemiJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
        )
        assert out == [(2,), (4,)]

    def test_merge_semi_join_right_exhausted(self):
        left = [(1,), (5,), (9,)]
        right = [(1,)]
        out = list(
            MergeSemiJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
        )
        assert out == [(1,)]

    def test_kway_merge(self):
        streams = [[(1,), (5,)], [(2,), (4,)], [(3,)]]
        out = list(KWayMerge(streams, key=lambda r: r[0]))
        assert out == [(1,), (2,), (3,), (4,), (5,)]

    def test_kway_merge_descending(self):
        streams = [[(5,), (1,)], [(4,), (2,)]]
        out = list(KWayMerge(streams, key=lambda r: r[0], descending=True))
        assert out == [(5,), (4,), (2,), (1,)]


@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 99)), max_size=60),
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 99)), max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_merge_join_matches_nested_loop(left_raw, right_raw):
    left = sorted(left_raw)
    right = sorted(right_raw)
    expected = sorted(
        l + r for l in left for r in right if l[0] == r[0]
    )
    out = sorted(
        MergeJoin(left, right, left_key=lambda r: r[0], right_key=lambda r: r[0])
    )
    assert out == expected


# ----------------------------------------------------------------------
# grouping and aggregation
# ----------------------------------------------------------------------
class TestGrouping:
    def test_sorted_group_by(self):
        rows = [(1, 10), (1, 20), (2, 5), (3, 1), (3, 2)]
        out = list(
            SortedGroupBy(
                rows,
                key=lambda r: (r[0],),
                aggregates=[Sum(lambda r: r[1]), Count()],
            )
        )
        assert out == [(1, 30, 2), (2, 5, 1), (3, 3, 2)]

    def test_min_max_avg(self):
        rows = [(1, 10), (1, 30), (1, 20)]
        out = list(
            SortedGroupBy(
                rows,
                key=lambda r: (r[0],),
                aggregates=[
                    Min(lambda r: r[1]),
                    Max(lambda r: r[1]),
                    Avg(lambda r: r[1]),
                ],
            )
        )
        assert out == [(1, 10, 30, 20.0)]

    def test_scalar_aggregate(self):
        rows = [(i,) for i in range(10)]
        out = list(ScalarAggregate(rows, [Sum(lambda r: r[0]), Count()]))
        assert out == [(45, 10)]

    def test_scalar_aggregate_empty(self):
        out = list(ScalarAggregate([], [Sum(lambda r: r[0]), Avg(lambda r: r[0])]))
        assert out == [(0, None)]

    def test_group_by_empty_input(self):
        assert list(SortedGroupBy([], key=lambda r: (r[0],), aggregates=[Count()])) == []
