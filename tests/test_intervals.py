"""Tests for IntervalSet, the retrieved space Φ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet


def test_empty():
    phi = IntervalSet()
    assert not phi
    assert len(phi) == 0
    assert phi.containing(5) is None
    assert 5 not in phi
    assert phi.covered() == 0


def test_single_interval():
    phi = IntervalSet()
    phi.add(3, 7)
    assert phi.intervals() == [(3, 7)]
    assert phi.containing(3) == (3, 7)
    assert phi.containing(7) == (3, 7)
    assert phi.containing(2) is None
    assert phi.containing(8) is None
    assert phi.covered() == 5


def test_disjoint_intervals_stay_separate():
    phi = IntervalSet()
    phi.add(0, 2)
    phi.add(10, 12)
    assert phi.intervals() == [(0, 2), (10, 12)]
    assert len(phi) == 2


def test_adjacent_intervals_merge():
    phi = IntervalSet()
    phi.add(0, 4)
    phi.add(5, 9)
    assert phi.intervals() == [(0, 9)]


def test_overlapping_intervals_merge():
    phi = IntervalSet()
    phi.add(0, 6)
    phi.add(4, 9)
    assert phi.intervals() == [(0, 9)]


def test_bridging_interval_merges_neighbours():
    phi = IntervalSet()
    phi.add(0, 2)
    phi.add(8, 10)
    phi.add(3, 7)
    assert phi.intervals() == [(0, 10)]


def test_contained_interval_is_absorbed():
    phi = IntervalSet()
    phi.add(0, 10)
    phi.add(3, 5)
    assert phi.intervals() == [(0, 10)]


def test_inverted_interval_rejected():
    phi = IntervalSet()
    with pytest.raises(ValueError):
        phi.add(5, 3)


def test_single_point_intervals():
    phi = IntervalSet()
    phi.add(5, 5)
    phi.add(7, 7)
    assert phi.intervals() == [(5, 5), (7, 7)]
    phi.add(6, 6)
    assert phi.intervals() == [(5, 7)]


@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 30)),
        min_size=0,
        max_size=40,
    ),
    st.integers(0, 230),
)
@settings(max_examples=300, deadline=None)
def test_matches_set_model(raw_intervals, probe):
    """IntervalSet behaves like a plain set of covered integers."""
    phi = IntervalSet()
    model: set[int] = set()
    for start, width in raw_intervals:
        phi.add(start, start + width)
        model.update(range(start, start + width + 1))
        # invariants: intervals sorted, disjoint, non-adjacent
        intervals = phi.intervals()
        for (al, ah), (bl, bh) in zip(intervals, intervals[1:]):
            assert ah + 1 < bl
    assert (probe in phi) == (probe in model)
    assert phi.covered() == len(model)
    hit = phi.containing(probe)
    if hit is not None:
        lo, hi = hit
        assert lo <= probe <= hi
        assert all(value in model for value in (lo, hi))
        assert lo - 1 not in model and hi + 1 not in model
