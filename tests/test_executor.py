"""Tests for the plan executor: optimizer choice -> running operators."""

import random

import pytest

from repro.costmodel import CostParameters
from repro.planner import PhysicalDesign, plan_sorted_query
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.rowsize import page_capacity_for, row_bytes


def build_design(rows=3000, seed=0):
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(seed)
    data = [
        (rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)
    ]
    db = Database(buffer_pages=64)
    heap = db.create_heap_table("heap", schema, 40)
    heap.load(data)
    iot_a1 = db.create_iot("iot_a1", schema, key=("a1", "a2"), page_capacity=40)
    iot_a1.load(data)
    iot_a2 = db.create_iot("iot_a2", schema, key=("a2", "a1"), page_capacity=40)
    iot_a2.load(data)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    design = PhysicalDesign(
        attributes=("a1", "a2"),
        heap=heap,
        iots={"a1": iot_a1, "a2": iot_a2},
        ub=ub,
    )
    return db, design, data


@pytest.fixture(scope="module")
def world():
    return build_design()


PARAMS = CostParameters(memory_pages=8)


class TestPhysicalDesign:
    def test_relation_stats_derivation(self, world):
        db, design, data = world
        stats = design.relation_stats()
        assert stats.pages == design.heap.page_count
        assert stats.ub_instance == "ub"
        assert dict(stats.iot_instances) == {"a1": "iot_a1", "a2": "iot_a2"}
        assert stats.ub_fill_factor == pytest.approx(
            design.ub.page_count / design.heap.page_count
        )

    def test_normalized_restrictions(self, world):
        db, design, data = world
        normalized = design.normalized_restrictions({"a1": (0, 511)})
        lo, hi = normalized["a1"]
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(0.5)
        open_ended = design.normalized_restrictions({"a2": (256, None)})
        assert open_ended["a2"][0] == pytest.approx(0.25)
        assert open_ended["a2"][1] == pytest.approx(1.0)

    def test_rejects_empty_design(self):
        with pytest.raises(ValueError):
            PhysicalDesign(attributes=("a",))

    def test_rejects_mislabeled_iot(self, world):
        db, design, data = world
        with pytest.raises(ValueError):
            PhysicalDesign(
                attributes=("a1", "a2"),
                iots={"a2": design.iots["a1"]},
            )


class TestExecution:
    def check(self, world, restrictions, sort_attr, expected_method=None, **kwargs):
        db, design, data = world
        db.reset_measurement()
        plan = plan_sorted_query(design, restrictions, sort_attr, PARAMS, **kwargs)
        if expected_method is not None:
            assert plan.choice.method == expected_method
        rows = list(plan.operator)
        position = design.schema.position(sort_attr)
        values = [row[position] for row in rows]
        descending = kwargs.get("descending", False)
        assert values == sorted(values, reverse=descending)

        def passes(row):
            for attr, (lo, hi) in (restrictions or {}).items():
                value = row[design.schema.position(attr)]
                if lo is not None and value < lo:
                    return False
                if hi is not None and value > hi:
                    return False
            return True

        assert len(rows) == sum(1 for row in data if passes(row))
        return plan

    def test_moderate_restriction_runs_tetris(self, world):
        plan = self.check(world, {"a1": (0, 511)}, "a2")
        assert plan.choice.method in ("tetris", "fts-sort")

    def test_tight_restriction_runs_iot(self, world):
        self.check(world, {"a1": (0, 3)}, "a2", expected_method="iot-sort")

    def test_presorted_iot_path(self, world):
        self.check(world, {"a2": (0, 3)}, "a2", expected_method="iot-presorted")

    def test_unrestricted_sort(self, world):
        self.check(world, None, "a1")

    def test_descending_execution(self, world):
        self.check(world, {"a1": (0, 255)}, "a2", descending=True)

    def test_pipelined_requirement(self, world):
        plan = self.check(
            world, {"a1": (0, 3)}, "a2", require_pipelined=True
        )
        assert not plan.choice.blocking

    def test_results_identical_across_methods(self, world):
        db, design, data = world
        results = {}
        for method_design in (
            PhysicalDesign(attributes=("a1", "a2"), heap=design.heap),
            PhysicalDesign(attributes=("a1", "a2"), ub=design.ub),
            PhysicalDesign(attributes=("a1", "a2"), iots=dict(design.iots)),
        ):
            plan = plan_sorted_query(
                method_design, {"a1": (100, 600)}, "a2", PARAMS
            )
            rows = list(plan.operator)
            results[plan.choice.method] = [
                (row[1], row[0], row[2]) for row in rows
            ]
        baseline = next(iter(results.values()))
        for method, rows in results.items():
            assert sorted(rows) == sorted(baseline), method


class TestRowSize:
    def make_schema(self):
        return Schema(
            [
                Attribute("k", IntEncoder(0, 2**20 - 1)),  # 20 bits -> 3 bytes
                Attribute("v", IntEncoder(0, 255)),  # 8 bits -> 1 byte
            ]
        )

    def test_row_bytes(self):
        schema = self.make_schema()
        assert row_bytes(schema) == 3 + 1 + 8  # data + default overhead
        assert row_bytes(schema, extra_payload_bytes=50) == 62

    def test_page_capacity(self):
        schema = self.make_schema()
        capacity = page_capacity_for(schema)
        assert capacity == (8192 - 96) // 12

    def test_capacity_floor(self):
        schema = self.make_schema()
        assert page_capacity_for(schema, extra_payload_bytes=10**6) == 2

    def test_string_encoder_width(self):
        from repro.relational.rowsize import encoder_bytes
        from repro.relational.schema import StringEncoder

        assert encoder_bytes(StringEncoder(prefix_chars=7)) == 7
