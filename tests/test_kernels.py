"""Backend parity for the batch-kernel layer.

The NumPy backend and the pure-Python fallback must be observationally
identical: same addresses, same selected indices, same sort
permutations, and — end to end — the same ``TetrisScan`` tuple stream,
page access order and simulated-clock stats.  These tests randomize
curves (both schedules, with and without flipped dimensions, including
>64-bit addresses) and assert the backends agree with each other *and*
with the scalar reference (`Curve.encode`, ``contains_point``).

All parity tests are skipped when NumPy is absent; the rest of the file
(registry behavior, fallback semantics) runs everywhere.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core import Curve, FlippedCurve, QueryBox, UBTree, ZSpace, tetris_sorted
from repro.core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    PredicateSpace,
)
from repro.storage import BufferPool, SimulatedDisk

HAVE_NUMPY = "numpy" in kernels.available_backends()
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="NumPy backend not importable"
)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_python_always_available(self):
        assert "python" in kernels.available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")

    def test_use_backend_restores(self):
        before = kernels.get_backend()
        with kernels.use_backend("python") as backend:
            assert backend.name == "python"
            assert kernels.get_backend() is backend
        assert kernels.get_backend() is before

    def test_auto_prefers_numpy_when_present(self):
        with kernels.use_backend("auto") as backend:
            expected = "numpy" if HAVE_NUMPY else "python"
            assert backend.name == expected

    @needs_numpy
    def test_set_backend_by_name(self):
        before = kernels.get_backend()
        try:
            assert kernels.set_backend("numpy").name == "numpy"
            assert kernels.set_backend("python").name == "python"
        finally:
            kernels._active = before


# ----------------------------------------------------------------------
# randomized curve/point cases
# ----------------------------------------------------------------------
@st.composite
def curve_cases(draw):
    dims = draw(st.integers(1, 5))
    # up to 17 bits/dim × 5 dims exercises >64-bit addresses
    bits = tuple(draw(st.integers(1, 17)) for _ in range(dims))
    seed = draw(st.integers(0, 10_000))
    schedule = draw(st.sampled_from(["z", "tetris"]))
    if schedule == "z":
        curve = Curve.z_curve(bits)
    else:
        order = draw(st.permutations(range(dims)))
        prefix = draw(st.integers(1, dims))
        curve = Curve.tetris_curve(bits, tuple(order[:prefix]))
    flip = frozenset(
        dim for dim in range(dims) if draw(st.booleans())
    )
    if flip:
        curve = FlippedCurve(curve, flip)
    count = draw(st.integers(0, 120))
    return curve, bits, seed, count


def random_points(bits, seed, count):
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(1 << b) for b in bits) for _ in range(count)
    ]


def random_box(bits, seed):
    rng = random.Random(seed ^ 0x5EED)
    lo, hi = [], []
    for b in bits:
        a, c = rng.randrange(1 << b), rng.randrange(1 << b)
        lo.append(min(a, c))
        hi.append(max(a, c))
    return tuple(lo), tuple(hi)


@needs_numpy
@given(curve_cases())
@settings(max_examples=80, deadline=None)
def test_encode_decode_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    with kernels.use_backend("python"):
        py_addresses = kernels.encode_batch(curve, points)
    with kernels.use_backend("numpy"):
        np_addresses = kernels.encode_batch(curve, points)
    assert np_addresses == py_addresses
    assert py_addresses == [curve.encode(p) for p in points]
    with kernels.use_backend("python"):
        py_points = kernels.decode_batch(curve, py_addresses)
    with kernels.use_backend("numpy"):
        np_points = kernels.decode_batch(curve, py_addresses)
    assert np_points == py_points
    assert py_points == points


@needs_numpy
@given(curve_cases())
@settings(max_examples=80, deadline=None)
def test_filter_and_argsort_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    lo, hi = random_box(bits, seed)
    box = QueryBox(lo, hi)
    with kernels.use_backend("python"):
        py_box = kernels.filter_box_batch(lo, hi, points)
        py_space = kernels.filter_space_batch(box, points)
    with kernels.use_backend("numpy"):
        np_box = kernels.filter_box_batch(lo, hi, points)
        np_space = kernels.filter_space_batch(box, points)
    assert np_box == py_box == np_space == py_space
    assert py_box == [
        i for i, p in enumerate(points) if box.contains_point(p)
    ]
    keys = [curve.encode(p) for p in points]
    for reverse in (False, True):
        with kernels.use_backend("python"):
            py_perm = kernels.argsort_keys(keys, reverse=reverse)
        with kernels.use_backend("numpy"):
            np_perm = kernels.argsort_keys(keys, reverse=reverse)
        assert np_perm == py_perm
        expected = sorted(range(len(keys)), key=keys.__getitem__, reverse=reverse)
        # both must be *stable*: equal keys keep arrival order
        assert [keys[i] for i in py_perm] == [keys[i] for i in expected]


@needs_numpy
@given(curve_cases())
@settings(max_examples=60, deadline=None)
def test_page_entries_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    lo, hi = random_box(bits, seed)
    box = QueryBox(lo, hi)
    base = seed % 977
    with kernels.use_backend("python"):
        py_result = kernels.page_entries(curve, box, points, base)
    with kernels.use_backend("numpy"):
        np_result = kernels.page_entries(curve, box, points, base)
    py_count, py_selected, py_entries = py_result
    np_count, np_selected, np_entries = np_result
    assert (np_count, list(np_selected), [list(e) for e in np_entries]) == (
        py_count,
        list(py_selected),
        [list(e) for e in py_entries],
    )
    assert [e[0] for e in py_entries] == sorted(e[0] for e in py_entries)


@needs_numpy
@given(curve_cases())
@settings(max_examples=40, deadline=None)
def test_region_min_keys_parity(case):
    sort_curve, bits, seed, _ = case
    base = sort_curve.base_curve if isinstance(sort_curve, FlippedCurve) else sort_curve
    z_curve = Curve.z_curve(bits)
    rng = random.Random(seed)
    top = (1 << z_curve.total_bits) - 1
    intervals = []
    for _ in range(rng.randrange(1, 12)):
        a, b = rng.randint(0, top), rng.randint(0, top)
        intervals.append((min(a, b), max(a, b)))
    lo, hi = random_box(bits, seed)
    with kernels.use_backend("python"):
        py_keys = kernels.region_min_keys(z_curve, sort_curve, intervals, lo, hi)
    with kernels.use_backend("numpy"):
        np_keys = kernels.region_min_keys(z_curve, sort_curve, intervals, lo, hi)
    assert np_keys == py_keys
    assert base.dims == len(bits)


# ----------------------------------------------------------------------
# end-to-end TetrisScan parity
# ----------------------------------------------------------------------
def build_tree(bits=(4, 4, 4), count=300, seed=9, page_capacity=4, bulk=False):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace(bits), page_capacity=page_capacity)
    rng = random.Random(seed)
    rows = [
        (tuple(rng.randrange(1 << b) for b in bits), index)
        for index in range(count)
    ]
    if bulk:
        tree.bulk_load(rows)
    else:
        for point, payload in rows:
            tree.insert(point, payload)
    return tree


def run_scan(backend, space, sort_dim, strategy, descending=False, **tree_kw):
    """One scan on a fresh tree: identical disk clocks per backend."""
    tree = build_tree(**tree_kw)
    with kernels.use_backend(backend):
        scan = tetris_sorted(
            tree, space, sort_dim, descending=descending, strategy=strategy
        )
        stream = list(scan)
    return stream, scan.page_access_order, vars(scan.stats)


SPACES = {
    "box": QueryBox((1, 0, 2), (14, 15, 13)),
    "comparison": IntersectionSpace(
        [QueryBox((0, 0, 0), (15, 15, 15)), ComparisonSpace(3, 0, "<", 2)]
    ),
    "opaque": PredicateSpace(3, lambda p: (p[0] + p[1] + p[2]) % 3 != 0),
}


@needs_numpy
@pytest.mark.parametrize("space_name", sorted(SPACES))
@pytest.mark.parametrize("strategy", ["eager", "sweep"])
def test_scan_identical_across_backends(space_name, strategy):
    space = SPACES[space_name]
    runs = {
        backend: run_scan(backend, space, 1, strategy)
        for backend in ("python", "numpy")
    }
    assert runs["python"] == runs["numpy"]
    stream, pages, stats = runs["python"]
    assert stats["tuples_output"] == len(stream)
    assert len(pages) == len(set(pages))


@needs_numpy
@pytest.mark.parametrize("strategy", ["eager", "sweep"])
def test_descending_composite_identical_across_backends(strategy):
    space = QueryBox((0, 1, 0), (15, 14, 15))
    runs = {
        backend: run_scan(
            backend, space, (2, 0), strategy, descending=True, bulk=True
        )
        for backend in ("python", "numpy")
    }
    assert runs["python"] == runs["numpy"]
    keys = [(p[2], p[0]) for p, _ in runs["python"][0]]
    assert keys == sorted(keys, reverse=True)


@needs_numpy
def test_strategies_agree_per_backend():
    space = SPACES["box"]
    for backend in ("python", "numpy"):
        eager = run_scan(backend, space, 0, "eager")
        sweep = run_scan(backend, space, 0, "sweep")
        # streams and page order are provably equal; CPU-side stats like
        # regions_examined legitimately differ between strategies
        assert eager[0] == sweep[0]
        assert eager[1] == sweep[1]


@needs_numpy
def test_scan_identical_after_mutations():
    """The columnar page cache must observe record mutations (version)."""
    space = QueryBox((0, 0, 0), (15, 15, 15))
    streams = {}
    for backend in ("python", "numpy"):
        tree = build_tree(count=150, seed=21)
        with kernels.use_backend(backend):
            first = list(tetris_sorted(tree, space, 0))
            for index in range(40):
                tree.insert((index % 16, (index * 7) % 16, (index * 3) % 16), 1000 + index)
            second = list(tetris_sorted(tree, space, 0))
        assert len(second) == len(first) + 40
        streams[backend] = (first, second)
    assert streams["python"] == streams["numpy"]


# ----------------------------------------------------------------------
# descending composite sort via FlippedCurve (runs on any backend)
# ----------------------------------------------------------------------
class TestDescendingComposite:
    def test_multi_flip_descending_lexicographic(self):
        tree = build_tree(bits=(4, 4, 4), count=400, seed=31, page_capacity=6)
        box = QueryBox((0, 2, 1), (15, 13, 14))
        scan = tetris_sorted(tree, box, (1, 2, 0), descending=True)
        out = list(scan)
        keys = [(p[1], p[2], p[0]) for p, _ in out]
        assert keys == sorted(keys, reverse=True)
        # the reflection wrapper flips every sort dimension
        assert isinstance(scan.tetris_curve, FlippedCurve)
        assert scan.tetris_curve.flip_dims == frozenset({0, 1, 2})

    def test_multi_flip_strategies_and_direction_agree(self):
        tree = build_tree(bits=(3, 3, 3), count=200, seed=17, page_capacity=5)
        box = QueryBox((1, 0, 0), (6, 7, 6))
        eager = tetris_sorted(tree, box, (2, 1), descending=True, strategy="eager")
        sweep = tetris_sorted(tree, box, (2, 1), descending=True, strategy="sweep")
        down = list(eager)
        assert down == list(sweep)
        assert eager.page_access_order == sweep.page_access_order
        ascending = list(tetris_sorted(tree, box, (2, 1)))
        assert sorted(
            ((p[2], p[1]) for p, _ in down), reverse=True
        ) == [(p[2], p[1]) for p, _ in down]
        assert len(down) == len(ascending)


# ----------------------------------------------------------------------
# whole-slab kernels: run formation, block scans, run merging
# ----------------------------------------------------------------------
def make_record_page(curve, points, page_id=0):
    """A synthetic Z-region page: records are (z_address, (point, payload))."""
    from repro.storage.page import Page

    page = Page(page_id, max(len(points), 1))
    entries = sorted(
        (curve.encode(point), (point, index))
        for index, point in enumerate(points)
    )
    page.extend(entries)
    return page


@needs_numpy
@given(curve_cases())
@settings(max_examples=40, deadline=None)
def test_scan_page_run_and_buffer_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    lo, hi = random_box(bits, seed)
    box = QueryBox(lo, hi)
    base = seed % 977
    page = make_record_page(curve, points)
    with kernels.use_backend("python"):
        reference = kernels.scan_page(curve, box, page, base)
    streams = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            qualifying, selected, run = kernels.scan_page_run(
                curve, box, page, base
            )
            assert qualifying == reference[0]
            assert list(selected) == list(reference[1])
            buffer = kernels.make_run_buffer()
            if qualifying:
                buffer.push(run)
            assert len(buffer) == qualifying
            streams[backend] = buffer.cut(None)
            assert len(buffer) == 0
            assert not buffer.has_key_below(None)
    assert streams["numpy"] == streams["python"]
    # cut(None) drains in (key, order) order: scan_page's entry order
    assert streams["python"] == [entry[1] for entry in reference[2]]


@needs_numpy
@given(curve_cases())
@settings(max_examples=30, deadline=None)
def test_run_buffer_interleaved_barrier_cuts_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    lo, hi = random_box(bits, seed)
    box = QueryBox(lo, hi)
    rng = random.Random(seed ^ 0xBA55)
    top = 1 << curve.total_bits
    pages = [
        make_record_page(curve, points[start : start + 7], page_id=start)
        for start in range(0, len(points), 7)
    ]
    barriers = [rng.randrange(top) for _ in pages]
    streams = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            buffer = kernels.make_run_buffer()
            stream, base = [], 0
            for page, barrier in zip(pages, barriers):
                qualifying, _, run = kernels.scan_page_run(
                    curve, box, page, base
                )
                base += len(page.records)
                if qualifying:
                    buffer.push(run)
                if buffer.has_key_below(barrier):
                    stream.extend(buffer.cut(barrier))
                    assert not buffer.has_key_below(barrier)
            stream.extend(buffer.cut(None))
            streams[backend] = stream
    assert streams["numpy"] == streams["python"]
    # every qualifying arrival is emitted exactly once
    with kernels.use_backend("python"):
        expected = sum(
            kernels.scan_page(curve, box, page, 0)[0] for page in pages
        )
    assert len(streams["python"]) == expected
    assert len(set(streams["python"])) == expected


@needs_numpy
@given(curve_cases())
@settings(max_examples=30, deadline=None)
def test_scan_block_parity(case):
    curve, bits, seed, count = case
    points = random_points(bits, seed, count)
    lo, hi = random_box(bits, seed)
    box = QueryBox(lo, hi)
    pages = [
        make_record_page(curve, points[start : start + 7], page_id=start)
        for start in range(0, len(points), 7)
    ]
    results = {}
    for backend in ("python", "numpy"):
        with kernels.use_backend(backend):
            selected_per_page, emit_order = kernels.scan_block(curve, box, pages)
            results[backend] = (
                [list(sel) for sel in selected_per_page],
                list(emit_order),
            )
    assert results["numpy"] == results["python"]
    selected_per_page, emit_order = results["python"]
    # reference: concatenate qualifying entries in arrival order, then
    # stable-sort by key — the per-tuple sweep's emission order
    arrivals = []
    for page, selected in zip(pages, selected_per_page):
        with kernels.use_backend("python"):
            reference = kernels.scan_page(curve, box, page, 0)
        assert selected == list(reference[1])
        arrivals.extend(page.records[index][0] for index in selected)
    expected = sorted(range(len(arrivals)), key=arrivals.__getitem__)
    assert emit_order == expected


@needs_numpy
def test_merge_sorted_keys_parity():
    rng = random.Random(4711)
    for trial in range(30):
        reverse = bool(trial % 2)
        size_a, size_b = rng.randrange(0, 25), rng.randrange(0, 25)
        keys_a = sorted(
            (rng.randrange(50) for _ in range(size_a)), reverse=reverse
        )
        keys_b = sorted(
            (rng.randrange(50) for _ in range(size_b)), reverse=reverse
        )
        with kernels.use_backend("python"):
            py_merge = kernels.merge_sorted_keys(keys_a, keys_b, reverse=reverse)
        with kernels.use_backend("numpy"):
            np_merge = kernels.merge_sorted_keys(keys_a, keys_b, reverse=reverse)
        assert np_merge == py_merge
        combined = keys_a + keys_b
        # exactly the permutation a stable sort of the concatenation
        # would produce: sorted keys, ties won by keys_a / earlier index
        expected = sorted(
            range(len(combined)), key=combined.__getitem__, reverse=reverse
        )
        assert py_merge == expected


@needs_numpy
def test_merge_sorted_keys_non_integer_keys_fall_back():
    keys_a = [("a", 1), ("c", 0)]
    keys_b = [("b", 2), ("c", 1)]
    with kernels.use_backend("python"):
        py_merge = kernels.merge_sorted_keys(keys_a, keys_b)
    with kernels.use_backend("numpy"):
        np_merge = kernels.merge_sorted_keys(keys_a, keys_b)
    assert np_merge == py_merge == [0, 2, 1, 3]


@needs_numpy
def test_run_buffer_accepts_foreign_runs():
    """A NumPy buffer degrades gracefully when fed a pure-Python run."""
    curve = Curve.z_curve((4, 4))
    box = QueryBox((0, 0), (15, 15))
    points = [(i % 16, (i * 7) % 16) for i in range(40)]
    page = make_record_page(curve, points)
    with kernels.use_backend("python"):
        _, _, pure_run = kernels.scan_page_run(curve, box, page, 0)
        expected = kernels.make_run_buffer()
        expected.push(pure_run)
        expected_stream = expected.cut(None)
    with kernels.use_backend("numpy"):
        buffer = kernels.make_run_buffer()
    buffer.push(pure_run)
    assert len(buffer) == len(points)
    assert buffer.cut(None) == expected_stream
