"""Tests for the cost-based access-path optimizer."""

import pytest

from repro.costmodel import SECTION_4_PARAMS
from repro.planner import CandidatePlan, RelationStats, choose_plan, enumerate_plans

STATS = RelationStats(
    pages=125_000,
    attributes=("a1", "a2"),
    heap_instance="heap",
    iot_instances=(("a1", "iot_a1"), ("a2", "iot_a2")),
    ub_instance="ub",
)


class TestEnumeration:
    def test_all_candidates_present(self):
        plans = enumerate_plans(STATS, {"a1": (0.0, 0.2)}, "a2", SECTION_4_PARAMS)
        methods = {(p.method, p.instance) for p in plans}
        assert methods == {
            ("fts-sort", "heap"),
            ("iot-sort", "iot_a1"),
            ("iot-presorted", "iot_a2"),
            ("tetris", "ub"),
        }

    def test_sorted_by_cost(self):
        plans = enumerate_plans(STATS, {"a1": (0.0, 0.2)}, "a2", SECTION_4_PARAMS)
        costs = [p.cost for p in plans]
        assert costs == sorted(costs)

    def test_blocking_flags(self):
        plans = {
            p.method: p
            for p in enumerate_plans(STATS, {"a1": (0.0, 0.2)}, "a2", SECTION_4_PARAMS)
        }
        assert plans["fts-sort"].blocking
        assert plans["iot-sort"].blocking
        assert not plans["iot-presorted"].blocking
        assert not plans["tetris"].blocking

    def test_rejects_unknown_attributes(self):
        with pytest.raises(KeyError):
            enumerate_plans(STATS, {"zzz": (0.0, 1.0)}, "a2", SECTION_4_PARAMS)
        with pytest.raises(KeyError):
            enumerate_plans(STATS, None, "zzz", SECTION_4_PARAMS)

    def test_partial_physical_design(self):
        stats = RelationStats(pages=1000, attributes=("a1", "a2"), heap_instance="heap")
        plans = enumerate_plans(stats, None, "a1", SECTION_4_PARAMS)
        assert [p.method for p in plans] == ["fts-sort"]

    def test_no_instances_raises_on_choose(self):
        stats = RelationStats(pages=1000, attributes=("a1",))
        with pytest.raises(ValueError):
            choose_plan(stats, None, "a1", SECTION_4_PARAMS)


class TestChoices:
    """The optimizer reproduces the paper's Section 4.5 guidance."""

    def test_moderate_restriction_picks_tetris(self):
        plan = choose_plan(STATS, {"a1": (0.0, 0.2)}, "a2", SECTION_4_PARAMS)
        assert plan.method == "tetris"

    def test_very_selective_restriction_picks_iot_on_it(self):
        plan = choose_plan(STATS, {"a1": (0.0, 0.001)}, "a2", SECTION_4_PARAMS)
        assert plan.method == "iot-sort"
        assert plan.instance == "iot_a1"

    def test_sort_on_leading_key_with_strong_restriction(self):
        plan = choose_plan(STATS, {"a2": (0.0, 0.001)}, "a2", SECTION_4_PARAMS)
        assert plan.method == "iot-presorted"

    def test_unrestricted_sort_makes_presorted_iot_competitive(self):
        """Figure 4-2's right edge: 'an IOT on A2 is only competitive if A1
        is hardly restricted' — with no restriction it beats FTS-sort."""
        plans = enumerate_plans(STATS, None, "a2", SECTION_4_PARAMS)
        by_method = {p.method: p.cost for p in plans}
        assert by_method["iot-presorted"] < by_method["fts-sort"]
        # ...but loses as soon as A1 is meaningfully restricted
        restricted = {
            p.method: p.cost
            for p in enumerate_plans(STATS, {"a1": (0.0, 0.2)}, "a2", SECTION_4_PARAMS)
        }
        assert restricted["tetris"] < restricted["iot-presorted"]

    def test_require_pipelined_switches_to_tetris(self):
        restrictions = {"a1": (0.0, 0.001)}
        default = choose_plan(STATS, restrictions, "a2", SECTION_4_PARAMS)
        assert default.blocking  # the cheapest plan blocks
        interactive = choose_plan(
            STATS, restrictions, "a2", SECTION_4_PARAMS, require_pipelined=True
        )
        assert not interactive.blocking
        assert interactive.method in ("tetris", "iot-presorted")

    def test_candidate_plan_str(self):
        plan = CandidatePlan("tetris", "ub", 12.5, blocking=False)
        text = str(plan)
        assert "tetris" in text and "pipelined" in text
