"""Replica-layer tests: k-way mirroring, checksum-triggered repair, the
repair → re-plan path, and buffer-pool quarantine lifting.

The repair contract (docs/ROBUSTNESS.md): a checksum-failed read of a
replicated page restores the primary bit-exactly from the first intact
replica, re-seals its checksum, charges the repair I/O to the fault
counters, and — when the page had been quarantined — lifts the
quarantine so the planner can return to the full physical design.
"""

import pytest

from repro import invariants
from repro.invariants import InvariantViolation
from repro.storage import (
    BufferPool,
    CorruptPageError,
    NO_RETRY,
    QuarantinedPageError,
    ReplicaCopy,
    ReplicatedDisk,
    SimulatedDisk,
    read_page_resilient,
)
from tools.chaos import run_schedule


def corrupt(page):
    """In-place record damage that the sealed checksum detects."""
    page.seal_checksum()
    page.records[0] = ("__rot__",)
    page.version += 1


def make_replicated(copies=2, pages=3, capacity=8):
    disk = ReplicatedDisk(copies=copies)
    for index in range(pages):
        page = disk.allocate(capacity)
        for slot in range(capacity):
            page.add((index, slot))
        disk.write(page)
    return disk


# ----------------------------------------------------------------------
# ReplicaCopy
# ----------------------------------------------------------------------
class TestReplicaCopy:
    def test_of_snapshot_is_intact(self):
        copy = ReplicaCopy.of([(1,), (2,)])
        assert copy.intact
        assert copy.records == ((1,), (2,))

    def test_rot_is_detectable(self):
        copy = ReplicaCopy.of([(1,)])
        rotten = ReplicaCopy(records=((1,), (2,)), checksum=copy.checksum)
        assert not rotten.intact


# ----------------------------------------------------------------------
# mirroring
# ----------------------------------------------------------------------
class TestMirroring:
    def test_copies_validated(self):
        with pytest.raises(ValueError):
            ReplicatedDisk(copies=0)

    def test_write_mirrors_record_pages(self):
        disk = make_replicated(copies=3, pages=2)
        assert disk.replicated_page_ids() == {0, 1}
        assert disk.stats.faults.replica_writes == 6
        assert disk.stats.faults.replica_delay == pytest.approx(
            2 * 3 * disk.params.t_tau
        )

    def test_payload_only_pages_are_not_mirrored(self):
        disk = ReplicatedDisk()
        inner_node = disk.allocate(0)
        inner_node.payload = object()
        disk.write(inner_node)
        assert disk.replicated_page_ids() == frozenset()

    def test_free_drops_the_replica_slot(self):
        disk = make_replicated(pages=1)
        disk.free(0)
        assert disk.replicated_page_ids() == frozenset()

    def test_shares_inner_clock_and_stats(self):
        inner = SimulatedDisk()
        disk = ReplicatedDisk(inner)
        assert disk.stats is inner.stats
        assert disk.params is inner.params

    def test_capture_all_mirrors_loaded_pages(self):
        inner = SimulatedDisk()
        page = inner.allocate(4)
        page.add((1,))
        disk = ReplicatedDisk(inner, copies=2)
        before = disk.clock
        assert disk.capture_all() == 1
        assert disk.replicated_page_ids() == {page.page_id}
        assert disk.clock > before


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
class TestRepair:
    def test_repair_restores_bit_exact_and_reseals(self):
        disk = make_replicated()
        page = disk.peek(0)
        committed = [(0, slot) for slot in range(8)]
        corrupt(page)
        assert not page.verify_checksum()
        assert disk.repair_page(0)
        assert list(page.records) == committed
        assert page.verify_checksum()
        faults = disk.stats.faults
        assert faults.repaired_pages == 1
        assert faults.repair_reads == 1  # first slot was intact
        assert faults.repair_delay == pytest.approx(2 * disk.params.random_cost(1))

    def test_repair_skips_rotten_slots(self):
        disk = make_replicated(copies=2)
        disk.corrupt_replica(0, slot=0)
        corrupt(disk.peek(0))
        assert disk.repair_page(0)
        assert disk.stats.faults.repair_reads == 2  # slot 0 inspected, rejected

    def test_repair_fails_when_every_copy_rotted(self):
        disk = make_replicated(copies=2)
        disk.corrupt_replica(0, slot=0)
        disk.corrupt_replica(0, slot=1)
        corrupt(disk.peek(0))
        assert not disk.repair_page(0)
        assert disk.stats.faults.repaired_pages == 0

    def test_repair_fails_without_replica_or_page(self):
        disk = ReplicatedDisk()
        page = disk.allocate(4)  # allocated but never written: no replica
        page.add((1,))
        assert not disk.repair_page(page.page_id)
        assert not disk.repair_page(999)

    def test_base_disk_has_no_redundancy(self):
        disk = SimulatedDisk()
        disk.allocate(4).add((1,))
        assert not disk.repair_page(0)

    def test_corrupt_replica_validates_slot(self):
        disk = make_replicated()
        with pytest.raises(KeyError):
            disk.corrupt_replica(0, slot=9)
        with pytest.raises(KeyError):
            disk.corrupt_replica(999)


# ----------------------------------------------------------------------
# repair through the resilient read path
# ----------------------------------------------------------------------
class TestResilientReadRepair:
    def test_corrupt_read_heals_in_place(self):
        disk = make_replicated()
        corrupt(disk.peek(1))
        page, retries = read_page_resilient(disk, 1, policy=NO_RETRY)
        assert retries == 0
        assert page.verify_checksum()
        assert disk.stats.faults.repaired_pages == 1

    def test_unrepairable_corruption_still_raises(self):
        disk = make_replicated(copies=1)
        disk.corrupt_replica(1, slot=0)
        corrupt(disk.peek(1))
        with pytest.raises(CorruptPageError):
            read_page_resilient(disk, 1, policy=NO_RETRY)


# ----------------------------------------------------------------------
# buffer-pool quarantine lifting
# ----------------------------------------------------------------------
class TestQuarantineLift:
    def test_corrupt_fetch_repairs_instead_of_quarantining(self):
        disk = make_replicated()
        pool = BufferPool(disk, 8, quarantine_threshold=2)
        corrupt(disk.peek(0))
        page = pool.get(0)
        assert page.verify_checksum()
        assert not pool.is_quarantined(0)
        assert disk.stats.faults.quarantined_pages == 0

    def test_quarantine_lifts_once_replicas_recover(self):
        disk = make_replicated(copies=1)
        pool = BufferPool(disk, 8, quarantine_threshold=2)
        disk.corrupt_replica(0, slot=0)
        corrupt(disk.peek(0))
        with pytest.raises(CorruptPageError):
            pool.get(0)  # repair fails (rotten replica): quarantined
        assert pool.is_quarantined(0)
        with pytest.raises(QuarantinedPageError):
            pool.get(0)
        # the mirror device comes back (fresh, intact copy): the next
        # lookup repairs the primary and lifts the quarantine in place
        truth = [(0, slot) for slot in range(8)]
        disk._replicas[0] = [ReplicaCopy.of(truth)]
        page = pool.get(0)
        assert list(page.records) == truth
        assert not pool.is_quarantined(0)
        assert pool.failure_count(0) == 0  # clean slate for the accounting
        assert disk.stats.faults.quarantine_lifted == 1

    def test_repair_quarantined_sweep(self):
        disk = make_replicated(copies=1, pages=2)
        pool = BufferPool(disk, 8, quarantine_threshold=2)
        disk.corrupt_replica(0, slot=0)
        corrupt(disk.peek(0))
        with pytest.raises(CorruptPageError):
            pool.get(0)
        disk._replicas[0] = [ReplicaCopy.of([(0, slot) for slot in range(8)])]
        assert pool.repair_quarantined() == [0]
        assert not pool.is_quarantined(0)
        assert pool.get(0).verify_checksum()

    def test_lift_quarantine_is_a_noop_for_healthy_pages(self):
        disk = make_replicated()
        pool = BufferPool(disk, 8)
        assert not pool.lift_quarantine(0)
        assert disk.stats.faults.quarantine_lifted == 0


# ----------------------------------------------------------------------
# the pinned degraded -> clean chaos seed
# ----------------------------------------------------------------------
class TestDegradedToClean:
    def test_seed_17_repairs_instead_of_degrading(self):
        """The acceptance pin: the read sweep's canonical "degraded" seed
        classifies "clean" once the world carries page replicas."""
        without = run_schedule(17)
        with_replicas = run_schedule(17, replicas=2)
        assert without.status == "degraded"
        assert with_replicas.status == "clean"
        assert with_replicas.repaired >= 1
        assert with_replicas.rows == without.rows


# ----------------------------------------------------------------------
# the replica contract under REPRO_CHECKS
# ----------------------------------------------------------------------
class TestReplicaInvariants:
    @pytest.fixture(autouse=True)
    def checks_on(self):
        previous = invariants.set_enabled(True)
        yield
        invariants.set_enabled(previous)

    def test_healthy_store_validates(self):
        disk = make_replicated()
        invariants.validate_replicated_disk(disk)

    def test_wrong_slot_count_is_caught(self):
        disk = make_replicated(copies=2)
        disk._replicas[0] = disk._replicas[0][:1]
        with pytest.raises(InvariantViolation):
            invariants.validate_replicated_disk(disk)

    def test_leaked_slot_for_freed_page_is_caught(self):
        disk = make_replicated()
        slots = disk._replicas[0]
        disk.free(0)
        disk._replicas[0] = slots
        with pytest.raises(InvariantViolation):
            invariants.validate_replicated_disk(disk)
