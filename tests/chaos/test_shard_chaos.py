"""Shard-chaos sweep tests: kill/corrupt/slow one shard copy mid-scan.

The CI shard job's payload: every pinned seed must land on its graded
outcome — bit-identical rows across failover and cross-copy repair,
typed :class:`~repro.shard.ShardFailedError` or a flagged partial when
no replica is left — and :mod:`tools.chaos` raises ``ChaosViolation``
on any silent wrong answer, so reaching an outcome at all *is* the
contract check.
"""

import pytest

from repro import kernels
from tools.chaos import (
    DEFAULT_SHARD_SEEDS,
    ChaosOutcome,
    run_shard_schedule,
    shard_scenario,
)

BACKENDS = kernels.available_backends()

#: the graded outcome each pinned seed must reproduce on every backend
EXPECTED_STATUS = {
    2: "failed",  # lone copy killed, no allow_partial -> typed error
    6: "clean",  # nothing armed
    7: "clean",  # latency only; must still finish bit-identical
    10: "degraded",  # kill mid-scan -> failover to the replica copy
    13: "degraded",  # corruption -> quarantine -> cross-copy repair
    29: "partial",  # lone copy killed, odd seed opts into allow_partial
}


class TestScenarioGrid:
    def test_pinned_seeds_span_the_grid(self):
        cells = {shard_scenario(seed) for seed in DEFAULT_SHARD_SEEDS}
        assert ("failover", "kill") in cells
        assert ("failover", "corrupt") in cells
        assert ("failover", "slow") in cells
        assert ("lone", "kill") in cells
        assert any(scenario == "clean" for scenario, _ in cells)

    def test_grid_is_deterministic(self):
        assert shard_scenario(13) == ("failover", "corrupt")
        assert shard_scenario(13) == shard_scenario(13)


class TestShardSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", DEFAULT_SHARD_SEEDS)
    def test_schedule_honours_contract(self, seed, backend):
        outcome = run_shard_schedule(seed, backend=backend)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.status == EXPECTED_STATUS[seed]
        if outcome.status == "failed":
            assert outcome.error  # typed failure is always explained
            assert outcome.degradations
        if outcome.status in ("degraded", "partial"):
            assert outcome.degradations

    def test_slow_schedule_actually_injected(self):
        outcome = run_shard_schedule(7)
        assert outcome.status == "clean"
        assert outcome.faults_injected > 0  # latency fired, scan survived

    def test_repair_schedule_heals_from_the_peer(self):
        outcome = run_shard_schedule(13)
        assert outcome.status == "degraded"
        assert outcome.repaired > 0
        assert outcome.lifted > 0

    def test_schedule_replays_exactly(self):
        assert run_shard_schedule(13) == run_shard_schedule(13)

    def test_outcomes_identical_across_backends(self):
        if len(BACKENDS) < 2:
            pytest.skip("only one kernel backend available")
        for seed in DEFAULT_SHARD_SEEDS:
            outcomes = [
                run_shard_schedule(seed, backend=backend)
                for backend in BACKENDS
            ]
            reference = outcomes[0]
            for outcome in outcomes[1:]:
                assert outcome.status == reference.status
                assert outcome.rows == reference.rows
                assert outcome.degradations == reference.degradations
