"""Write-path chaos tests: torn writes during WAL-journaled bulk loads
and inserts, redo recovery, the simulated-crash rollback leg, and the
pinned degraded -> clean replica-repair seed.

These back the CI chaos job's ``python -m tools.chaos --write`` and
``--replicas 2`` steps (run with ``REPRO_CHECKS=1`` on both kernel
backends).  :func:`tools.chaos.run_write_schedule` already raises
``ChaosViolation`` on any divergence from the fault-free oracle, so
reaching an outcome at all *is* the contract check.
"""

import pytest

from repro import kernels
from tools.chaos import (
    DEFAULT_WRITE_SEEDS,
    ChaosOutcome,
    run_schedule,
    run_write_schedule,
)

BACKENDS = kernels.available_backends()


class TestWriteSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", DEFAULT_WRITE_SEEDS)
    def test_schedule_recovers_bit_identically(self, seed, backend):
        """Every pinned write seed must tear at least one page and end
        bit-identical to a fault-free load (verified inside the run)."""
        outcome = run_write_schedule(seed, backend=backend)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.status == "recovered"  # the pinned seeds all tear
        assert outcome.faults_injected > 0
        assert outcome.healed > 0  # redo did real work
        assert any(kind == "torn" for _, kind, _, _ in outcome.fault_log)

    def test_schedule_replays_exactly(self):
        first = run_write_schedule(DEFAULT_WRITE_SEEDS[0])
        second = run_write_schedule(DEFAULT_WRITE_SEEDS[0])
        assert first == second  # includes the full fault_log

    def test_outcomes_identical_across_backends(self):
        if len(BACKENDS) < 2:
            pytest.skip("only one kernel backend available")
        for seed in DEFAULT_WRITE_SEEDS:
            outcomes = [
                run_write_schedule(seed, backend=backend) for backend in BACKENDS
            ]
            reference = outcomes[0]
            for outcome in outcomes[1:]:
                assert outcome.status == reference.status
                assert outcome.rows == reference.rows
                assert outcome.healed == reference.healed
                assert outcome.fault_log == reference.fault_log


class TestReplicaRepairSeed:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pinned_degraded_seed_turns_clean_with_replicas(self, backend):
        """The acceptance pin: seed 17 — "degraded" on the plain sweep —
        classifies "clean" on a replicated world, because the corrupt
        page is repaired in place and the planner keeps the full
        design."""
        plain = run_schedule(17, backend=backend)
        assert plain.status == "degraded"
        repaired = run_schedule(17, backend=backend, replicas=2)
        assert repaired.status == "clean"
        assert repaired.repaired >= 1
        assert repaired.degradations == ()
        assert repaired.rows == plain.rows
