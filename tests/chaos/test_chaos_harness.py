"""Chaos-harness tests: the engine's resilience contract under seeded
fault schedules, plus fault-free parity of the FaultyDisk wrapper.

These are the CI chaos job's payload (run with ``REPRO_CHECKS=1`` on
both kernel backends): every schedule must end in verified-correct rows
or a typed failure — :mod:`tools.chaos` raises ``ChaosViolation``
otherwise — and must replay exactly from its seed.
"""

import pytest

from repro import kernels
from repro.storage import FaultPlan, FaultyDisk, SimulatedDisk
from tools.chaos import (
    DEFAULT_SEEDS,
    QUERY,
    ChaosOutcome,
    build_world,
    run_schedule,
)

BACKENDS = kernels.available_backends()


def q6_scan(db, design, access_order):
    """The harness query's two scan shapes, with page accesses recorded."""
    original_read = SimulatedDisk.read

    def recording_read(self, page_id, **kwargs):
        access_order.append(page_id)
        return original_read(self, page_id, **kwargs)

    SimulatedDisk.read = recording_read
    try:
        fts = list(design.heap.scan())
        tetris = list(
            design.ub.tetris_scan(QUERY["restrictions"], QUERY["sort_attr"])
        )
    finally:
        SimulatedDisk.read = original_read
    return fts, [row for _, row in tetris]


# ----------------------------------------------------------------------
# satellite: fault-free parity of the wrapper
# ----------------------------------------------------------------------
class TestFaultFreeParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_plan_is_observationally_identical(self, backend):
        """FaultyDisk(empty plan) == SimulatedDisk: bit-identical tuple
        streams, IOStats and page-access order on Q6-style scans."""
        with kernels.use_backend(backend):
            bare_order: list[int] = []
            bare_db, bare_design, data = build_world(rows=800)
            bare_rows = q6_scan(bare_db, bare_design, bare_order)

            faulty_order: list[int] = []
            faulty_db, faulty_design, _ = build_world(FaultPlan(), rows=800)
            assert isinstance(faulty_db.disk, FaultyDisk)
            faulty_db.arm_faults()  # even armed, an empty plan injects nothing
            faulty_rows = q6_scan(faulty_db, faulty_design, faulty_order)
            faulty_db.disarm_faults()

        assert faulty_rows == bare_rows  # FTS stream and Tetris stream
        assert faulty_order == bare_order  # page-access order
        assert faulty_db.disk.stats == bare_db.disk.stats  # full IOStats
        assert faulty_db.disk.stats.faults.total_injected == 0
        assert faulty_db.disk.fault_log == []

    def test_parity_across_backends(self):
        """Both kernel backends see the same streams from a faulty world."""
        if len(BACKENDS) < 2:
            pytest.skip("only one kernel backend available")
        streams = {}
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                db, design, _ = build_world(FaultPlan(), rows=800)
                order: list[int] = []
                streams[backend] = (q6_scan(db, design, order), order)
        first, *rest = streams.values()
        for other in rest:
            assert other == first


# ----------------------------------------------------------------------
# tentpole: seeded chaos sweep
# ----------------------------------------------------------------------
class TestChaosSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", DEFAULT_SEEDS)
    def test_schedule_honours_contract(self, seed, backend):
        """run_schedule raises ChaosViolation on any silent wrong answer;
        reaching an outcome at all *is* the contract check."""
        outcome = run_schedule(seed, backend=backend)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.status in ("clean", "degraded", "failed")
        if outcome.status == "failed":
            assert outcome.error  # typed failure is always explained
        if outcome.status == "degraded":
            assert outcome.degradations

    def test_pinned_seeds_cover_all_statuses(self):
        """The CI seeds stay a meaningful sweep: all three outcomes occur."""
        statuses = {
            run_schedule(seed).status for seed in DEFAULT_SEEDS
        }
        assert statuses == {"clean", "degraded", "failed"}

    def test_schedule_replays_exactly(self):
        first = run_schedule(17)
        second = run_schedule(17)
        assert first == second  # includes the full fault_log

    def test_outcomes_identical_across_backends(self):
        if len(BACKENDS) < 2:
            pytest.skip("only one kernel backend available")
        for seed in DEFAULT_SEEDS:
            outcomes = [
                run_schedule(seed, backend=backend) for backend in BACKENDS
            ]
            reference = outcomes[0]
            for outcome in outcomes[1:]:
                assert outcome.status == reference.status
                assert outcome.rows == reference.rows
                assert outcome.fault_log == reference.fault_log
