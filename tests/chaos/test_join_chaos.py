"""Join-chaos sweep tests: shard copies killed/corrupted mid-join.

The CI join job's fault-tolerance payload: every pinned seed must land
on its graded outcome — the co-partitioned join's concatenated output
bit-identical to the serial merge join across mid-join failover and
cross-copy repair, a typed :class:`~repro.shard.ShardFailedError` or a
flagged partial when no replica is left — and :mod:`tools.chaos` raises
``ChaosViolation`` on any silent wrong answer, so reaching an outcome
at all *is* the contract check.
"""

import pytest

from repro import kernels
from tools.chaos import (
    DEFAULT_JOIN_SEEDS,
    ChaosOutcome,
    join_scenario,
    run_join_schedule,
)

BACKENDS = kernels.available_backends()

#: the graded outcome each pinned seed must reproduce on every backend
EXPECTED_STATUS = {
    2: "failed",  # lone probe copy killed, no allow_partial -> typed error
    6: "clean",  # nothing armed (inner join)
    7: "clean",  # latency only; join must still finish bit-identical
    10: "degraded",  # kill mid-join -> failover to the replica copy (semi)
    13: "degraded",  # corruption -> quarantine -> cross-copy repair (semi)
    29: "partial",  # lone copy killed, odd seed opts into allow_partial
}


class TestScenarioGrid:
    def test_pinned_seeds_span_the_grid(self):
        cells = {join_scenario(seed) for seed in DEFAULT_JOIN_SEEDS}
        scenarios = {(scenario, fault) for scenario, fault, _ in cells}
        kinds = {kind for _, _, kind in cells}
        assert ("failover", "kill") in scenarios
        assert ("failover", "corrupt") in scenarios
        assert ("failover", "slow") in scenarios
        assert ("lone", "kill") in scenarios
        assert any(scenario == "clean" for scenario, _ in scenarios)
        assert kinds == {"inner", "semi"}  # both merge loops exercised

    def test_grid_is_deterministic(self):
        assert join_scenario(13) == ("failover", "corrupt", "semi")
        assert join_scenario(13) == join_scenario(13)


class TestJoinSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", DEFAULT_JOIN_SEEDS)
    def test_schedule_honours_contract(self, seed, backend):
        outcome = run_join_schedule(seed, backend=backend)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.status == EXPECTED_STATUS[seed]
        if outcome.status == "failed":
            assert outcome.error  # typed failure is always explained
            assert outcome.degradations
        if outcome.status in ("degraded", "partial"):
            assert outcome.degradations

    def test_slow_schedule_actually_injected(self):
        outcome = run_join_schedule(7)
        assert outcome.status == "clean"
        assert outcome.faults_injected > 0  # latency fired, join survived

    def test_repair_schedule_heals_from_the_peer(self):
        outcome = run_join_schedule(13)
        assert outcome.status == "degraded"
        assert outcome.repaired > 0
        assert outcome.lifted > 0

    def test_partial_outcome_flags_the_lost_rows(self):
        outcome = run_join_schedule(29)
        assert outcome.status == "partial"
        assert outcome.rows > 0  # the surviving legs still produced output

    def test_schedule_replays_exactly(self):
        assert run_join_schedule(13) == run_join_schedule(13)

    def test_outcomes_identical_across_backends(self):
        if len(BACKENDS) < 2:
            pytest.skip("only one kernel backend available")
        for seed in DEFAULT_JOIN_SEEDS:
            outcomes = [
                run_join_schedule(seed, backend=backend) for backend in BACKENDS
            ]
            assert all(
                outcome.status == outcomes[0].status
                and outcome.rows == outcomes[0].rows
                for outcome in outcomes
            )
