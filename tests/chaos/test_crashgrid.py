"""Crash-schedule explorer tests (``tools.crashgrid``) and the 2PC
chaos sweep (``tools.chaos --txn``).

The explorer itself raises :class:`~tools.crashgrid.CrashGridViolation`
on any breach of the all-or-nothing contract — a crash point that never
fires, a post-recovery world matching neither the oracle nor the
baseline, an outcome contradicting the decision log, or a second
recovery pass that is not a no-op — so completing a grid at all *is*
the contract check.  These tests run complete (small) grids on every
backend and pin the structural claims on top.
"""

import pytest

from repro import kernels
from tools.chaos import DEFAULT_TXN_SEEDS, run_txn_schedule
from tools.crashgrid import (
    WORKLOADS,
    measure_commit_overhead,
    run_crash_grid,
)

BACKENDS = kernels.available_backends()


class TestCrashGrid:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_complete_grid_holds_the_contract(self, workload, backend):
        result = run_crash_grid(
            workload, backend=backend, rows=16, extra_rows=6
        )
        # complete enumeration: one schedule per append per device
        assert result.schedules == sum(result.appends_per_device)
        assert result.schedules > 10
        assert result.committed + result.aborted == result.schedules

    def test_every_device_is_explored(self):
        result = run_crash_grid("load", backend=BACKENDS[0], rows=16)
        assert result.devices[0] == "txn-log"
        assert set(result.devices) == {
            "txn-log",
            "shard0.copy0.wal",
            "shard0.copy0.disk",
            "shard1.copy0.wal",
            "shard1.copy0.disk",
        }
        assert all(count >= 1 for count in result.appends_per_device)

    def test_both_verdicts_are_reached(self):
        """The grid must witness commits *and* aborts — a grid that only
        ever aborts never exercised post-decision crash recovery."""
        result = run_crash_grid("load", backend=BACKENDS[0], rows=16)
        assert result.committed > 0
        assert result.aborted > 0

    def test_decision_log_agrees_with_every_outcome(self):
        result = run_crash_grid("load", backend=BACKENDS[0], rows=16)
        for point in result.points:
            if point.outcome == "committed":
                assert point.decided == "commit", point
            else:
                assert point.decided != "commit", point

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_crash_grid("vacuum")

    def test_commit_overhead_is_positive_and_bounded(self):
        bench = measure_commit_overhead(rows=16)
        assert bench["overhead_seconds"] > 0  # 2PC is not free
        assert bench["overhead_ratio"] < 2.0  # ...but not ruinous
        assert bench["txn_load_seconds"] > bench["raw_load_seconds"]


class TestTxnChaosSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", DEFAULT_TXN_SEEDS)
    def test_schedule_converges(self, seed, backend):
        """Every pinned seed must inject real log faults, crash, and
        recover onto a decision-log-consistent state (verified inside
        the run)."""
        outcome = run_txn_schedule(seed, backend=backend)
        assert outcome.status in ("clean", "recovered")
        assert outcome.faults_injected > 0, "seed stopped injecting"

    def test_pinned_seeds_cover_all_verdict_paths(self):
        """Seed 23 presumes abort, 6 re-acks a completed commit, 85
        drives in-doubt participants forward — together the sweep walks
        every recovery verdict path."""
        outcomes = {
            seed: run_txn_schedule(seed, backend=BACKENDS[0])
            for seed in DEFAULT_TXN_SEEDS
        }
        assert all(o.status == "recovered" for o in outcomes.values())
        # seed 85's crash lands on a shard WAL's own commit record:
        # recovery must resolve both prepared batches forward
        assert outcomes[85].healed == 2
        assert outcomes[6].healed == 0
        assert outcomes[23].healed == 0
