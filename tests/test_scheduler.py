"""Tests for the multi-queue I/O scheduler: single-disk parity, device
scaling, queue accounting, and async-read fault semantics."""

import random

import pytest

from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import (
    FaultPlan,
    FaultyDisk,
    IOScheduler,
    MissingPageError,
    SimulatedDisk,
    armed_scheduler_count,
)
from repro.storage.faults import TRANSIENT


def make_disk(pages=24, capacity=8, plan=None):
    disk = FaultyDisk(plan=plan) if plan is not None else SimulatedDisk()
    ids = []
    for index in range(pages):
        page = disk.allocate(capacity)
        for slot in range(capacity):
            page.add((index, slot))
        ids.append(page.page_id)
    return disk, ids


def make_db(rows=600, *, devices=1, prefetch_depth=0, seed=11):
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(seed)
    data = [(rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)]
    db = Database(
        buffer_pages=48, devices=devices, prefetch_depth=prefetch_depth
    )
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    db.buffer.flush()
    db.reset_measurement()
    return db, ub


# ----------------------------------------------------------------------
# single-device parity: the scheduler must be an identity wrapper
# ----------------------------------------------------------------------
class TestSingleDeviceParity:
    def test_demand_reads_cost_identical_to_bare_disk(self):
        bare, bare_ids = make_disk()
        fronted, ids = make_disk()
        scheduler = IOScheduler(fronted, 1)
        order = ids[:8] + ids[:4] + list(reversed(ids[8:16]))
        for bare_id, page_id in zip(
            bare_ids[:8] + bare_ids[:4] + list(reversed(bare_ids[8:16])), order
        ):
            bare.read(bare_id)
            scheduler.read(page_id)
        assert fronted.stats.time == pytest.approx(bare.stats.time)
        assert fronted.stats.pages_read == bare.stats.pages_read

    def test_sequential_amortization_preserved(self):
        bare, bare_ids = make_disk()
        fronted, ids = make_disk()
        scheduler = IOScheduler(fronted, 1)
        for bare_id, page_id in zip(bare_ids, ids):
            bare.read(bare_id, sequential=True)
            scheduler.read(page_id, sequential=True)
        assert fronted.stats.time == pytest.approx(bare.stats.time)

    def test_unpriced_read_occupies_no_queue(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2)
        scheduler.read(ids[0], charge=False)
        assert scheduler.queue_free_times() == [0.0, 0.0]
        assert disk.stats.time == 0.0


# ----------------------------------------------------------------------
# device scaling: overlapped async reads shrink elapsed time
# ----------------------------------------------------------------------
class TestDeviceScaling:
    def test_striping_maps_pages_round_robin(self):
        disk, _ = make_disk()
        scheduler = IOScheduler(disk, 3)
        assert [scheduler.device_of(p) for p in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_submitted_batch_elapses_as_max_not_sum(self):
        serial_disk, serial_ids = make_disk()
        for page_id in serial_ids[:8]:
            serial_disk.read(page_id)
        serial_elapsed = serial_disk.stats.time

        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 4, prefetch_depth=8)
        for page_id in ids[:8]:
            assert scheduler.submit(page_id) is not None
        for page_id in ids[:8]:
            scheduler.claim(page_id)
        assert disk.stats.time < serial_elapsed
        # 8 equal transfers over 4 queues: two service times per queue
        assert disk.stats.time == pytest.approx(serial_elapsed / 4)

    def test_tetris_scan_elapsed_decreases_with_devices(self):
        elapsed = []
        reference = None
        for devices in (1, 2, 4):
            db, ub = make_db(devices=devices, prefetch_depth=16)
            before = db.disk.stats.time
            stream = list(ub.tetris_scan({"a1": (100, 900)}, "a2"))
            elapsed.append(db.disk.stats.time - before)
            if reference is None:
                reference = stream
            else:
                assert stream == reference
        assert elapsed[1] < elapsed[0]
        assert elapsed[2] < elapsed[1]

    def test_single_device_prefetch_costs_no_more_than_demand(self):
        db_plain, ub_plain = make_db(devices=1, prefetch_depth=0)
        before = db_plain.disk.stats.time
        baseline = list(ub_plain.tetris_scan({"a1": (100, 900)}, "a2"))
        plain_elapsed = db_plain.disk.stats.time - before

        db_pf, ub_pf = make_db(devices=1, prefetch_depth=16)
        before = db_pf.disk.stats.time
        stream = list(ub_pf.tetris_scan({"a1": (100, 900)}, "a2"))
        prefetch_elapsed = db_pf.disk.stats.time - before

        assert stream == baseline
        assert prefetch_elapsed <= plain_elapsed + 1e-9


# ----------------------------------------------------------------------
# accounting: the prefetch ledger and queue counters
# ----------------------------------------------------------------------
class TestQueueAccounting:
    def test_busy_time_accumulates_service_time(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        serial_disk, serial_ids = make_disk()
        for page_id in serial_ids[:4]:
            serial_disk.read(page_id)
        for page_id in ids[:4]:
            scheduler.submit(page_id)
        for page_id in ids[:4]:
            scheduler.claim(page_id)
        prefetch = disk.stats.prefetch
        # queues spun for the full service time even though the clock
        # only advanced by the overlapped maximum
        assert prefetch.queue_busy_time == pytest.approx(serial_disk.stats.time)
        assert disk.stats.time < prefetch.queue_busy_time

    def test_issued_equals_hits_plus_wasted_after_drain(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=8)
        for page_id in ids[:6]:
            scheduler.submit(page_id)
        for page_id in ids[:3]:
            scheduler.claim(page_id)
        scheduler.cancel_all()
        prefetch = disk.stats.prefetch
        assert scheduler.inflight_count == 0
        assert prefetch.prefetch_issued == 6
        assert prefetch.prefetch_hits == 3
        assert prefetch.prefetch_wasted == 3

    def test_demand_read_claims_inflight_as_hit(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        submitted = scheduler.submit(ids[0])
        claimed = scheduler.read(ids[0])
        assert claimed is submitted
        assert disk.stats.prefetch.prefetch_hits == 1
        assert disk.stats.pages_read == 1  # the transfer happened once

    def test_duplicate_submit_is_coalesced(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        first = scheduler.submit(ids[0])
        second = scheduler.submit(ids[0])
        assert first is second
        assert disk.stats.prefetch.prefetch_issued == 1


# ----------------------------------------------------------------------
# fault semantics of async reads
# ----------------------------------------------------------------------
class TestAsyncFaults:
    def test_transient_on_submit_returns_none_and_counts_wasted(self):
        plan = FaultPlan(seed=5, scripted_reads=((0, 0, TRANSIENT),))
        disk, ids = make_disk(plan=plan)
        victim = ids[0]
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        disk.arm()
        try:
            assert scheduler.submit(victim) is None
            prefetch = disk.stats.prefetch
            assert prefetch.prefetch_issued == 1
            assert prefetch.prefetch_wasted == 1
            assert scheduler.inflight_count == 0
            # the queue spun for the failed attempt
            assert prefetch.queue_busy_time > 0
            # the demand path then reads normally (access 1 is clean)
            page = scheduler.read(victim)
            assert page.page_id == victim
        finally:
            disk.disarm()

    def test_claim_without_submission_raises(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        with pytest.raises(MissingPageError):
            scheduler.claim(ids[0])

    def test_cancel_unknown_page_returns_false(self):
        disk, ids = make_disk()
        scheduler = IOScheduler(disk, 2, prefetch_depth=4)
        assert scheduler.cancel(ids[0]) is False


# ----------------------------------------------------------------------
# delegation and the armed registry
# ----------------------------------------------------------------------
class TestDelegation:
    def test_stats_and_clock_delegate_to_wrapped_stack(self):
        disk, _ = make_disk()
        scheduler = IOScheduler(disk, 2)
        assert scheduler.stats is disk.stats
        scheduler.advance_clock(0.5)
        assert disk.stats.time == pytest.approx(0.5)

    def test_validation_rejects_bad_parameters(self):
        disk, _ = make_disk()
        with pytest.raises(ValueError):
            IOScheduler(disk, 0)
        with pytest.raises(ValueError):
            IOScheduler(disk, 1, prefetch_depth=-1)

    def test_armed_registry_counts_prefetching_schedulers_only(self):
        disk, _ = make_disk()
        before = armed_scheduler_count()
        passive = IOScheduler(disk, 4)
        assert armed_scheduler_count() == before
        armed = IOScheduler(disk, 2, prefetch_depth=4)
        assert armed_scheduler_count() == before + 1
        del armed
        del passive
