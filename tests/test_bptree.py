"""Tests for the B+-tree substrate: ordering, splits, accounting."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BOTTOM, BPlusTree, IndexOrganizedTable, TOP
from repro.storage import BufferPool, SimulatedDisk


def make_tree(leaf_capacity=4, fanout=4, buffer_pages=256):
    disk = SimulatedDisk()
    pool = BufferPool(disk, buffer_pages)
    return BPlusTree(pool, leaf_capacity=leaf_capacity, fanout=fanout), disk


class TestBPlusTree:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert tree.record_count == 0
        assert tree.search(5) == []
        assert list(tree.range_scan()) == []

    def test_insert_and_search(self):
        tree, _ = make_tree()
        for key in [5, 3, 8, 1, 9, 2]:
            tree.insert(key, f"v{key}")
        assert tree.search(8) == ["v8"]
        assert tree.search(4) == []
        tree.check_invariants()

    def test_duplicates(self):
        tree, _ = make_tree()
        for _ in range(3):
            tree.insert(7, "same")
        tree.insert(7, "other")
        assert len(tree.search(7)) == 4

    def test_splits_build_height(self):
        tree, _ = make_tree(leaf_capacity=2, fanout=3)
        for key in range(50):
            tree.insert(key, key)
        assert tree.height > 2
        assert tree.leaf_count > 10
        tree.check_invariants()
        assert [k for k, _ in tree.range_scan()] == list(range(50))

    def test_random_insert_order(self):
        tree, _ = make_tree(leaf_capacity=5, fanout=5)
        keys = list(range(300))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 2)
        tree.check_invariants()
        scanned = list(tree.range_scan())
        assert [k for k, _ in scanned] == list(range(300))
        assert all(v == k * 2 for k, v in scanned)

    def test_range_scan_bounds(self):
        tree, _ = make_tree()
        for key in range(0, 100, 2):  # even keys
            tree.insert(key, key)
        assert [k for k, _ in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]
        assert [k for k, _ in tree.range_scan(9, 21)] == [10, 12, 14, 16, 18, 20]
        assert [k for k, _ in tree.range_scan(90)] == [90, 92, 94, 96, 98]
        assert [k for k, _ in tree.range_scan(None, 4)] == [0, 2, 4]

    def test_delete(self):
        tree, _ = make_tree()
        for key in range(20):
            tree.insert(key, key)
        assert tree.delete(7)
        assert not tree.delete(7)
        assert tree.search(7) == []
        assert tree.record_count == 19
        tree.check_invariants()

    def test_delete_specific_value(self):
        tree, _ = make_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "b")
        assert tree.search(1) == ["a"]

    def test_all_equal_keys_overflow_instead_of_split(self):
        tree, _ = make_tree(leaf_capacity=3)
        for _ in range(10):
            tree.insert(42, "x")
        assert tree.overflow_pages > 0
        assert len(tree.search(42)) == 10
        tree.check_invariants()

    def test_split_never_separates_equal_keys(self):
        tree, _ = make_tree(leaf_capacity=4)
        for key in [1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]:
            tree.insert(key, key)
        tree.check_invariants()
        for key in (1, 2, 3, 4):
            assert len(tree.search(key)) == 3

    def test_leaf_for_bounds(self):
        tree, _ = make_tree(leaf_capacity=2)
        for key in range(16):
            tree.insert(key, key)
        leaf, low, high = tree.leaf_for(0, charge=False)
        assert low is None
        leaf, low, high = tree.leaf_for(15, charge=False)
        assert high is None
        # middle leaves have both bounds and contain their key range
        leaf, low, high = tree.leaf_for(8, charge=False)
        assert low is not None and high is not None
        assert low < 8 <= high

    def test_leaf_reads_are_random_priced(self):
        tree, disk = make_tree(leaf_capacity=2)
        for key in range(40):
            tree.insert(key, key)
        before = disk.snapshot()
        list(tree.range_scan())
        delta = disk.snapshot() - before
        assert delta.pages_read == tree.leaf_count
        assert delta.read_seeks == tree.leaf_count  # one seek per leaf

    def test_inner_reads_unpriced(self):
        tree, disk = make_tree(leaf_capacity=2, fanout=3, buffer_pages=1)
        for key in range(64):
            tree.insert(key, key)
        before = disk.snapshot()
        tree.search(10)
        delta = disk.snapshot() - before
        assert delta.pages_read == 1  # only the leaf is priced

    def test_rejects_bad_parameters(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 8)
        with pytest.raises(ValueError):
            BPlusTree(pool, leaf_capacity=1)
        with pytest.raises(ValueError):
            BPlusTree(pool, leaf_capacity=4, fanout=2)


@given(
    st.lists(st.integers(0, 500), min_size=0, max_size=200),
    st.integers(0, 500),
    st.integers(0, 500),
)
@settings(max_examples=100, deadline=None)
def test_bptree_matches_sorted_list_model(keys, lo, hi):
    tree, _ = make_tree(leaf_capacity=4, fanout=4)
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    lo, hi = min(lo, hi), max(lo, hi)
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert [k for k, _ in tree.range_scan(lo, hi)] == expected


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 50)), max_size=120))
@settings(max_examples=100, deadline=None)
def test_bptree_insert_delete_model(operations):
    from collections import Counter

    tree, _ = make_tree(leaf_capacity=4, fanout=4)
    model: Counter = Counter()
    for is_insert, key in operations:
        if is_insert:
            tree.insert(key, key)
            model[key] += 1
        else:
            removed = tree.delete(key)
            assert removed == (model[key] > 0)
            if removed:
                model[key] -= 1
    tree.check_invariants()
    expected = sorted(model.elements())
    assert [k for k, _ in tree.range_scan()] == expected


class TestIOT:
    def test_composite_key_order(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 64)
        iot = IndexOrganizedTable(
            pool, key_of=lambda row: (row[1], row[0]), page_capacity=4
        )
        rows = [(i, i % 3) for i in range(30)]
        random.Random(1).shuffle(rows)
        iot.load(rows)
        iot.check_invariants()
        out = list(iot.scan())
        assert out == sorted(rows, key=lambda r: (r[1], r[0]))
        assert len(iot) == 30

    def test_prefix_range_with_sentinels(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 64)
        iot = IndexOrganizedTable(
            pool, key_of=lambda row: (row[0], row[1]), page_capacity=4
        )
        rows = [(a, b) for a in range(5) for b in range(5)]
        iot.load(rows)
        lo, hi = IndexOrganizedTable.prefix_range((2,))
        out = list(iot.scan(lo, hi))
        assert out == [(2, b) for b in range(5)]

    def test_sentinel_ordering(self):
        assert BOTTOM < 0 and BOTTOM < -10 and not (BOTTOM > 5)
        assert TOP > 10**9 and not (TOP < 5)
        assert BOTTOM < TOP
        assert BOTTOM == type(BOTTOM)()
        assert TOP >= TOP and BOTTOM <= BOTTOM

    def test_delete_row(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, 64)
        iot = IndexOrganizedTable(pool, key_of=lambda row: (row[0],), page_capacity=4)
        iot.load([(1, "a"), (2, "b")])
        assert iot.delete((1, "a"))
        assert not iot.delete((1, "a"))
        assert list(iot.scan()) == [(2, "b")]
