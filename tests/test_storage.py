"""Tests for the simulated disk, buffer pool, pages and heap files."""

import pytest

from repro.storage import (
    BufferPool,
    DiskParameters,
    HeapFile,
    ICDE99_ANALYSIS,
    ICDE99_TESTBED,
    Page,
    PageOverflowError,
    SimulatedDisk,
)


# ----------------------------------------------------------------------
# DiskParameters
# ----------------------------------------------------------------------
class TestDiskParameters:
    def test_presets_match_paper(self):
        assert ICDE99_ANALYSIS.t_pi == pytest.approx(0.010)
        assert ICDE99_ANALYSIS.t_tau == pytest.approx(0.001)
        assert ICDE99_ANALYSIS.prefetch == 16
        assert ICDE99_TESTBED.t_pi == pytest.approx(0.008)
        assert ICDE99_TESTBED.t_tau == pytest.approx(0.0007)

    def test_scan_cost_formula(self):
        params = DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=16)
        # 32 consecutive pages: 2 seeks + 32 transfers
        assert params.scan_cost(32) == pytest.approx(2 * 0.01 + 32 * 0.001)
        # 1 page: 1 seek + 1 transfer
        assert params.scan_cost(1) == pytest.approx(0.011)
        assert params.scan_cost(0) == 0.0

    def test_random_cost_formula(self):
        params = DiskParameters(t_pi=0.01, t_tau=0.001)
        assert params.random_cost(10) == pytest.approx(0.11)


# ----------------------------------------------------------------------
# Page
# ----------------------------------------------------------------------
class TestPage:
    def test_capacity_enforced(self):
        page = Page(0, 2)
        page.add("a")
        page.add("b")
        assert page.is_full
        with pytest.raises(PageOverflowError):
            page.add("c")

    def test_iteration_and_len(self):
        page = Page(0, 3)
        page.extend(["x", "y"])
        assert len(page) == 2
        assert list(page) == ["x", "y"]
        assert page.free_slots == 1
        page.clear()
        assert len(page) == 0


# ----------------------------------------------------------------------
# SimulatedDisk
# ----------------------------------------------------------------------
class TestSimulatedDisk:
    def test_allocation_is_monotonic(self):
        disk = SimulatedDisk()
        pages = [disk.allocate(4) for _ in range(3)]
        assert [p.page_id for p in pages] == [0, 1, 2]
        assert disk.allocated_pages == 3

    def test_extent_is_contiguous(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        extent = disk.allocate_extent(4, capacity=4)
        assert [p.page_id for p in extent] == [1, 2, 3, 4]

    def test_read_missing_page_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(KeyError):
            disk.read(99)

    def test_random_read_costs_seek_plus_transfer(self):
        disk = SimulatedDisk(DiskParameters(t_pi=0.01, t_tau=0.001))
        disk.allocate(4)
        disk.read(0)
        assert disk.clock == pytest.approx(0.011)
        stats = disk.stats.category("data")
        assert stats.pages_read == 1
        assert stats.read_seeks == 1

    def test_sequential_scan_amortizes_seeks(self):
        params = DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=4)
        disk = SimulatedDisk(params)
        disk.allocate_extent(8, capacity=4)
        for page_id in range(8):
            disk.read(page_id, sequential=True)
        # 8 pages, prefetch 4 -> 2 seeks + 8 transfers
        assert disk.clock == pytest.approx(2 * 0.01 + 8 * 0.001)
        assert disk.stats.read_seeks == 2

    def test_sequential_flag_with_gap_still_seeks(self):
        disk = SimulatedDisk(DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=16))
        disk.allocate_extent(10, capacity=4)
        disk.read(0, sequential=True)
        disk.read(5, sequential=True)  # gap breaks the run
        assert disk.stats.read_seeks == 2

    def test_unpriced_read_recorded_separately(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        disk.read(0, charge=False, category="index")
        assert disk.clock == 0.0
        assert disk.stats.category("index").unpriced_reads == 1
        assert disk.stats.pages_read == 0

    def test_write_accounting(self):
        disk = SimulatedDisk(DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=4))
        pages = disk.allocate_extent(4, capacity=4)
        for page in pages:
            disk.write(page, sequential=True, category="temp")
        assert disk.stats.category("temp").pages_written == 4
        assert disk.stats.category("temp").write_seeks == 1
        assert disk.clock == pytest.approx(0.01 + 4 * 0.001)

    def test_read_breaks_write_run_and_vice_versa(self):
        disk = SimulatedDisk(DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=16))
        pages = disk.allocate_extent(4, capacity=4)
        disk.write(pages[0], sequential=True)
        disk.read(2, sequential=True)
        disk.write(pages[1], sequential=True)  # head moved: must seek again
        assert disk.stats.write_seeks == 2

    def test_snapshot_differencing(self):
        disk = SimulatedDisk()
        disk.allocate_extent(4, capacity=4)
        disk.read(0)
        before = disk.snapshot()
        disk.read(1)
        disk.read(2)
        delta = disk.snapshot() - before
        assert delta.pages_read == 2
        assert delta.time == pytest.approx(2 * 0.011)

    def test_free_removes_page(self):
        disk = SimulatedDisk()
        page = disk.allocate(4)
        disk.free(page.page_id)
        assert not disk.page_exists(page.page_id)
        disk.free(page.page_id)  # idempotent

    def test_advance_clock(self):
        disk = SimulatedDisk()
        disk.advance_clock(1.5)
        assert disk.clock == pytest.approx(1.5)

    def test_stats_summary_mentions_reads(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        disk.read(0)
        assert "read=1p" in disk.stats.summary()


# ----------------------------------------------------------------------
# BufferPool
# ----------------------------------------------------------------------
class TestBufferPool:
    def test_hit_avoids_io(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        pool = BufferPool(disk, capacity=2)
        pool.get(0)
        clock = disk.clock
        pool.get(0)
        assert disk.clock == clock
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction(self):
        disk = SimulatedDisk()
        disk.allocate_extent(3, capacity=4)
        pool = BufferPool(disk, capacity=2)
        pool.get(0)
        pool.get(1)
        pool.get(0)  # touch 0: 1 becomes LRU
        pool.get(2)  # evicts 1
        assert 1 not in pool
        assert 0 in pool and 2 in pool

    def test_dirty_eviction_writes_back(self):
        disk = SimulatedDisk()
        disk.allocate_extent(3, capacity=4)
        pool = BufferPool(disk, capacity=1)
        pool.get(0)
        pool.mark_dirty(0)
        pool.get(1)  # evicts dirty 0
        assert disk.stats.pages_written == 1

    def test_flush_writes_dirty_pages(self):
        disk = SimulatedDisk()
        disk.allocate_extent(2, capacity=4)
        pool = BufferPool(disk, capacity=4)
        pool.get(0)
        pool.get(1)
        pool.mark_dirty(0)
        pool.flush()
        assert disk.stats.pages_written == 1
        pool.flush()  # nothing left
        assert disk.stats.pages_written == 1

    def test_drop_all_forgets_without_writeback(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        pool = BufferPool(disk, capacity=4)
        pool.get(0)
        pool.mark_dirty(0)
        pool.drop_all()
        assert len(pool) == 0
        assert disk.stats.pages_written == 0

    def test_evict_specific_page(self):
        disk = SimulatedDisk()
        disk.allocate(4)
        pool = BufferPool(disk, capacity=4)
        pool.get(0)
        pool.mark_dirty(0)
        pool.evict(0)
        assert 0 not in pool
        assert disk.stats.pages_written == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(SimulatedDisk(), capacity=0)


# ----------------------------------------------------------------------
# HeapFile
# ----------------------------------------------------------------------
class TestHeapFile:
    def test_append_and_scan_roundtrip(self):
        disk = SimulatedDisk()
        heap = HeapFile(disk, page_capacity=3, extent_pages=2)
        records = list(range(10))
        heap.load(records)
        assert len(heap) == 10
        assert heap.page_count == 4
        assert list(heap.scan()) == records

    def test_pages_physically_consecutive(self):
        disk = SimulatedDisk()
        heap = HeapFile(disk, page_capacity=2, extent_pages=4)
        heap.load(range(8))
        ids = heap.page_ids
        assert ids == list(range(ids[0], ids[0] + 4))

    def test_scan_priced_sequentially(self):
        params = DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=4)
        disk = SimulatedDisk(params)
        heap = HeapFile(disk, page_capacity=2, extent_pages=8)
        heap.load(range(16))  # 8 pages
        list(heap.scan())
        assert disk.stats.read_seeks == 2
        assert disk.stats.pages_read == 8

    def test_drop_frees_pages(self):
        disk = SimulatedDisk()
        heap = HeapFile(disk, page_capacity=2, extent_pages=2)
        heap.load(range(4))
        ids = heap.page_ids
        heap.drop()
        assert len(heap) == 0
        assert all(not disk.page_exists(i) for i in ids)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HeapFile(SimulatedDisk(), page_capacity=0)
