"""Write-ahead log tests: batch semantics, rollback, the deterministic
crash hook, redo-on-open recovery and simulated-clock pricing.

The WAL's contract (docs/ROBUSTNESS.md): every journaled batch either
commits — after which a torn data write replays bit-identically from the
log — or rolls back to the exact pre-batch state, including page
content, checksums and allocations.  Recovery is idempotent.
"""

import pytest

from repro import invariants
from repro.invariants import InvariantViolation
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import (
    FaultPlan,
    FaultyDisk,
    SimulatedCrashError,
    SimulatedDisk,
    StorageError,
    WriteAheadLog,
    active_wal,
)
from repro.storage.heap import HeapFile
from repro.storage.wal import ABORT, ALLOC, BEGIN, COMMIT, FREE, IMAGE, UNDO


def make_wal(params=None):
    disk = SimulatedDisk(params)
    return disk, WriteAheadLog(disk)


def tear(page):
    """Damage a page exactly like a torn write: the checksum was sealed
    over the intended content, but only a prefix reached the platter."""
    page.seal_checksum()
    del page.records[len(page.records) // 2 :]
    page.version += 1


# ----------------------------------------------------------------------
# arming and validation
# ----------------------------------------------------------------------
class TestArming:
    def test_constructor_registers_on_disk(self):
        disk, wal = make_wal()
        assert active_wal(disk) is wal

    def test_double_arm_rejected(self):
        disk, _ = make_wal()
        with pytest.raises(RuntimeError):
            WriteAheadLog(disk)

    def test_detach_unregisters(self):
        disk, wal = make_wal()
        wal.detach()
        assert active_wal(disk) is None

    def test_records_per_page_validated(self):
        with pytest.raises(ValueError):
            WriteAheadLog(SimulatedDisk(), records_per_page=0)

    def test_active_wal_sees_through_wrapper_stacks(self):
        base = SimulatedDisk()
        stack = FaultyDisk(base, FaultPlan())
        wal = WriteAheadLog(stack)
        assert active_wal(stack) is wal
        assert active_wal(base) is wal  # registered on the base via proxy


# ----------------------------------------------------------------------
# batch lifecycle
# ----------------------------------------------------------------------
class TestBatchLifecycle:
    def test_commit_record_sequence(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        with wal.batch("load"):
            wal.log_alloc(page)
            page.extend([(1,), (2,)])
            wal.log_image(page)
            disk.write(page)
        kinds = [record.kind for record in wal.records]
        assert kinds == [BEGIN, ALLOC, IMAGE, COMMIT]
        assert wal.records[0].label == "load"

    def test_lsns_are_dense_and_ordered(self):
        disk, wal = make_wal()
        with wal.batch():
            wal.log_alloc(disk.allocate(8))
        assert [record.lsn for record in wal.records] == [0, 1, 2]

    def test_abort_restores_touched_page_bit_exact(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        page.extend([(1,), (2,), (3,)])
        page.seal_checksum()
        before = (list(page.records), page.stored_checksum)
        wal.begin("edit")
        wal.touch(page)
        page.add((4,))
        page.stored_checksum = None
        wal.abort()
        assert (list(page.records), page.stored_checksum) == before
        assert wal.records[-1].kind == ABORT
        assert disk.stats.faults.wal_rollbacks == 1

    def test_abort_frees_batch_allocations(self):
        disk, wal = make_wal()
        wal.begin()
        page = disk.allocate(8)
        wal.log_alloc(page)
        page.add((1,))
        wal.abort()
        assert not disk.page_exists(page.page_id)

    def test_deferred_free_applies_at_commit_only(self):
        disk, wal = make_wal()
        doomed = disk.allocate(8)
        wal.begin()
        wal.log_free(doomed.page_id)
        assert disk.page_exists(doomed.page_id)  # still deferred
        wal.commit()
        assert not disk.page_exists(doomed.page_id)
        assert FREE in [record.kind for record in wal.records]

    def test_rollback_keeps_deferred_frees(self):
        disk, wal = make_wal()
        survivor = disk.allocate(8)
        wal.begin()
        wal.log_free(survivor.page_id)
        wal.abort()
        assert disk.page_exists(survivor.page_id)

    def test_nested_batch_joins_the_outer_one(self):
        disk, wal = make_wal()
        with wal.batch("outer") as outer_txn:
            with wal.batch("inner") as inner_txn:
                assert inner_txn == outer_txn
                assert wal.in_batch
        kinds = [record.kind for record in wal.records]
        assert kinds == [BEGIN, COMMIT]  # one batch, not two

    def test_touch_is_first_touch_only_and_skips_batch_allocations(self):
        disk, wal = make_wal()
        old = disk.allocate(8)
        wal.begin()
        fresh = disk.allocate(8)
        wal.log_alloc(fresh)
        wal.touch(old)
        wal.touch(old)  # second touch: no-op
        wal.touch(fresh)  # batch-allocated: no-op
        wal.commit()
        undo = [record for record in wal.records if record.kind == UNDO]
        assert [record.page_id for record in undo] == [old.page_id]

    def test_primitives_outside_batch(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        wal.log_alloc(page)  # no-op
        wal.touch(page)  # no-op
        assert wal.records == []
        with pytest.raises(RuntimeError):
            wal.log_image(page)
        with pytest.raises(RuntimeError):
            wal.log_free(page.page_id)
        with pytest.raises(RuntimeError):
            wal.commit()
        with pytest.raises(RuntimeError):
            wal.abort()

    def test_serial_batches_only(self):
        _, wal = make_wal()
        wal.begin()
        with pytest.raises(RuntimeError):
            wal.begin()


# ----------------------------------------------------------------------
# pricing: every append is forced to the log device on simulated time
# ----------------------------------------------------------------------
class TestPricing:
    def test_appends_charge_the_shared_clock(self):
        disk, wal = make_wal()
        start = disk.clock
        with wal.batch():
            wal.log_alloc(disk.allocate(8))
        faults = disk.stats.faults
        assert faults.wal_appends == 3  # begin + alloc + commit
        assert faults.wal_delay > 0.0
        assert disk.clock == pytest.approx(start + faults.wal_delay)
        # the log device saw the same amount of simulated time
        assert wal.device.stats.time == pytest.approx(faults.wal_delay)

    def test_log_pages_fill_up(self):
        disk, wal = make_wal()
        wal_small = None
        disk2 = SimulatedDisk()
        wal_small = WriteAheadLog(disk2, records_per_page=2)
        with wal_small.batch():
            for _ in range(3):
                wal_small.log_alloc(disk2.allocate(4))
        # 5 records at 2 per page -> 3 log pages
        assert wal_small.log_page_count == 3
        assert wal.log_page_count == 0


# ----------------------------------------------------------------------
# the deterministic crash hook
# ----------------------------------------------------------------------
class TestCrashHook:
    def test_countdown_validated(self):
        _, wal = make_wal()
        with pytest.raises(ValueError):
            wal.crash_after_appends(0)

    def test_crash_fires_once_then_disarms(self):
        disk, wal = make_wal()
        wal.crash_after_appends(2)
        with pytest.raises(SimulatedCrashError):
            with wal.batch():
                wal.log_alloc(disk.allocate(8))  # append #2: lost
        # the crashed append never reached the log, but the rollback's
        # abort record (post-disarm) did
        kinds = [record.kind for record in wal.records]
        assert kinds == [BEGIN, ABORT]

    def test_crashed_batch_rolls_back_page_content(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        page.extend([(1,), (2,)])
        before = list(page.records)
        wal.crash_after_appends(3)
        with pytest.raises(SimulatedCrashError):
            with wal.batch():
                wal.touch(page)
                page.add((3,))
                wal.log_image(page)  # append #3: the crash
        assert list(page.records) == before


# ----------------------------------------------------------------------
# redo-on-open recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_torn_write_replays_to_committed_image(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        with wal.batch("load"):
            wal.log_alloc(page)
            page.extend([(i,) for i in range(6)])
            wal.log_image(page)
            disk.write(page)
        committed = list(page.records)
        tear(page)
        assert list(page.records) != committed
        report = wal.recover()
        assert report.healed_pages == 1
        assert list(page.records) == committed
        assert page.verify_checksum()
        assert disk.stats.faults.wal_redo_pages == 1

    def test_recovery_is_idempotent(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        with wal.batch():
            wal.log_alloc(page)
            page.add((1,))
            wal.log_image(page)
            disk.write(page)
        tear(page)
        wal.recover()
        second = wal.recover()
        assert second.healed_pages == 0
        assert second.rolled_back_batches == 0
        assert list(page.records) == [(1,)]

    def test_uncommitted_images_are_not_replayed(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        page.extend([(1,)])
        wal.begin()
        wal.touch(page)
        page.add((2,))
        wal.log_image(page)
        report = wal.recover()  # aborts the open batch, replays nothing
        assert report.rolled_back_batches == 1
        assert report.healed_pages == 0
        assert list(page.records) == [(1,)]
        assert not wal.in_batch

    def test_last_committed_image_wins(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        for value in ((1,), (2,)):
            with wal.batch():
                wal.touch(page)
                page.records = [value]
                page.version += 1
                wal.log_image(page)
                disk.write(page)
        tear(page)
        wal.recover()
        assert list(page.records) == [(2,)]

    def test_recovery_charges_a_log_scan(self):
        disk, wal = make_wal()
        with wal.batch():
            wal.log_alloc(disk.allocate(8))
        before = disk.clock
        wal.recover()
        assert disk.clock > before

    def test_recovery_skips_pages_freed_after_commit(self):
        disk, wal = make_wal()
        page = disk.allocate(8)
        with wal.batch():
            wal.log_alloc(page)
            page.add((1,))
            wal.log_image(page)
            disk.write(page)
        disk.free(page.page_id)
        report = wal.recover()
        assert report.examined_pages == 0
        assert not disk.page_exists(page.page_id)


# ----------------------------------------------------------------------
# WAL-protected engine paths
# ----------------------------------------------------------------------
class TestEnginePaths:
    def test_heap_bulk_load_replays_after_torn_writes(self):
        disk, wal = make_wal()
        heap = HeapFile(disk, page_capacity=4, extent_pages=4)
        heap.bulk_load([(i,) for i in range(10)])
        loaded = [disk.peek(page_id) for page_id in heap.page_ids]
        committed = [list(page.records) for page in loaded]
        for page in loaded:
            tear(page)
        wal.recover()
        assert [list(page.records) for page in loaded] == committed
        assert list(heap.scan()) == [(i,) for i in range(10)]

    def test_heap_bulk_load_crash_rolls_back_cleanly(self):
        disk, wal = make_wal()
        heap = HeapFile(disk, page_capacity=4, extent_pages=4)
        heap.bulk_load([(i,) for i in range(4)])
        pre_pages = disk.allocated_pages
        pre_rows = list(heap.scan())
        wal.crash_after_appends(4)
        with pytest.raises(SimulatedCrashError):
            heap.bulk_load([(i,) for i in range(100, 140)])
        assert disk.allocated_pages == pre_pages  # no leaked extents
        assert list(heap.scan()) == pre_rows
        wal.recover()
        assert list(heap.scan()) == pre_rows

    def test_database_recover_requires_wal(self):
        db = Database()
        with pytest.raises(RuntimeError):
            db.recover()

    def test_database_bulk_load_torn_then_recovered(self):
        schema = Schema(
            [Attribute("k", IntEncoder(0, 1023)), Attribute("v", IntEncoder(0, 1023))]
        )
        db = Database(wal=True)
        table = db.create_heap_table("t", schema, 8)
        rows = [(i, i * 2) for i in range(30)]
        table.bulk_load(rows)
        for page in db.disk.iter_pages():
            if page.records:
                tear(page)
        report = db.recover()
        assert report.healed_pages > 0
        assert list(table.scan()) == rows


# ----------------------------------------------------------------------
# the WAL contract under REPRO_CHECKS
# ----------------------------------------------------------------------
class TestWalInvariants:
    @pytest.fixture(autouse=True)
    def checks_on(self):
        previous = invariants.set_enabled(True)
        yield
        invariants.set_enabled(previous)

    def test_healthy_log_validates(self):
        disk, wal = make_wal()
        with wal.batch():
            page = disk.allocate(8)
            wal.log_alloc(page)
            page.add((1,))
            wal.log_image(page)
            disk.write(page)
        invariants.validate_wal(wal)

    def test_mirror_divergence_is_caught(self):
        disk, wal = make_wal()
        with wal.batch():
            wal.log_alloc(disk.allocate(8))
        wal.records.pop()  # mirror no longer matches the durable log
        with pytest.raises(InvariantViolation):
            invariants.validate_wal(wal)


# ----------------------------------------------------------------------
# the prepared (in-doubt) state: the 2PC participant surface
# ----------------------------------------------------------------------
class TestPreparedBatches:
    def _open_batch(self, disk, wal, gid="g1"):
        wal.begin(gid)
        page = disk.allocate(4)
        wal.log_alloc(page)
        page.add((1,))
        wal.log_image(page)
        disk.write(page)
        return page

    def test_prepare_moves_batch_in_doubt(self):
        disk, wal = make_wal()
        self._open_batch(disk, wal)
        wal.prepare("g1")
        assert wal.prepared_gids == ("g1",)
        assert not wal.in_batch

    def test_commit_prepared_applies_and_closes(self):
        disk, wal = make_wal()
        page = self._open_batch(disk, wal)
        wal.prepare("g1")
        wal.commit_prepared("g1")
        assert wal.prepared_gids == ()
        assert list(page.records) == [(1,)]
        assert [r.kind for r in wal.records][-1] == COMMIT

    def test_abort_prepared_restores_before_images(self):
        disk, wal = make_wal()
        pre_pages = disk.allocated_pages
        self._open_batch(disk, wal)
        wal.prepare("g1")
        wal.abort_prepared("g1")
        assert wal.prepared_gids == ()
        assert disk.allocated_pages == pre_pages  # allocation undone

    def test_unknown_gid_rejected(self):
        disk, wal = make_wal()
        with pytest.raises(RuntimeError, match="ghost"):
            wal.commit_prepared("ghost")
        with pytest.raises(RuntimeError, match="ghost"):
            wal.abort_prepared("ghost")

    def test_new_batch_refused_while_in_doubt(self):
        """Prepared state holds its locks: no new batch until decided."""
        disk, wal = make_wal()
        self._open_batch(disk, wal, gid="g1")
        wal.prepare("g1")
        with pytest.raises(RuntimeError, match="in-doubt"):
            wal.begin("other")
        wal.commit_prepared("g1")
        with wal.batch("other"):
            wal.log_alloc(disk.allocate(4))

    def test_recover_decide_commits_vouched_gids(self):
        disk, wal = make_wal()
        page = self._open_batch(disk, wal)
        wal.prepare("g1")
        report = wal.recover(decide=lambda gid: gid == "g1")
        assert report.resolved_commits == 1
        assert list(page.records) == [(1,)]

    def test_recover_presumes_abort_without_decide(self):
        disk, wal = make_wal()
        pre_pages = disk.allocated_pages
        self._open_batch(disk, wal)
        wal.prepare("g1")
        report = wal.recover()
        assert report.resolved_aborts == 1
        assert disk.allocated_pages == pre_pages


# ----------------------------------------------------------------------
# satellite: the WAL log device itself under fault injection
# ----------------------------------------------------------------------
class TestFaultedLogDevice:
    #: pinned seed: injects torn and transient *log appends* during the
    #: bulk load below on both kernel backends, all absorbed by the
    #: verified force (the world still equals a fault-free load)
    PINNED_SEED = 13

    def _schema(self):
        return Schema(
            [
                Attribute("k", IntEncoder(0, 1023)),
                Attribute("v", IntEncoder(0, 1023)),
            ]
        )

    def test_wal_fault_plan_requires_wal(self):
        with pytest.raises(ValueError):
            Database(wal_fault_plan=FaultPlan(seed=1, torn_write_rate=0.5))

    def test_pinned_seed_converges_through_log_faults(self):
        rows = [(i % 1024, i * 2 % 1024) for i in range(200)]
        oracle = Database(wal=True)
        oracle_table = oracle.create_heap_table("t", self._schema(), 8)
        oracle_table.bulk_load(rows)

        plan = FaultPlan(
            seed=self.PINNED_SEED, transient_rate=0.05, torn_write_rate=0.25
        )
        db = Database(wal=True, wal_fault_plan=plan)
        table = db.create_heap_table("t", self._schema(), 8)
        db.arm_faults()
        try:
            table.bulk_load(rows)
        finally:
            db.disarm_faults()
        assert list(table.scan()) == rows
        assert list(table.scan()) == list(oracle_table.scan())
        injected = db.wal.device.stats.faults.total_injected
        assert injected > 0, "pinned seed stopped injecting log faults"
        # the verified force kept the mirror == device at every boundary
        invariants.validate_wal(db.wal)

    def test_recovery_after_log_faults_is_clean(self):
        rows = [(i % 1024, i % 7) for i in range(120)]
        plan = FaultPlan(seed=self.PINNED_SEED, torn_write_rate=0.3)
        db = Database(wal=True, wal_fault_plan=plan)
        table = db.create_heap_table("t", self._schema(), 8)
        db.arm_faults()
        try:
            table.bulk_load(rows)
        finally:
            db.disarm_faults()
        report = db.recover()
        assert list(table.scan()) == rows
        again = db.recover()
        assert again.healed_pages == 0


# ----------------------------------------------------------------------
# satellite: recovery idempotence at *every* crash point of a workload
# ----------------------------------------------------------------------
class TestExhaustiveIdempotence:
    def _load(self, db):
        schema = Schema(
            [
                Attribute("k", IntEncoder(0, 1023)),
                Attribute("v", IntEncoder(0, 1023)),
            ]
        )
        table = db.create_heap_table("t", schema, 4)
        table.bulk_load([(i, i % 7) for i in range(40)])
        return table

    def _snapshot(self, db):
        return [
            (page.page_id, list(page.records))
            for page in sorted(
                db.disk.iter_pages(), key=lambda p: p.page_id
            )
        ]

    def test_recover_is_noop_after_every_crash_point(self):
        """For every WAL append index the load makes: crash there,
        recover, and require the second recovery pass to change
        nothing — the single-log version of the crashgrid's idempotence
        leg."""
        reference = Database(wal=True)
        self._load(reference)
        appends = reference.wal.append_count
        assert appends > 10  # the grid must actually enumerate
        for index in range(1, appends + 1):
            db = Database(wal=True)
            db.wal.crash_after_appends(index)
            with pytest.raises(SimulatedCrashError):
                self._load(db)
            db.recover()
            state = self._snapshot(db)
            again = db.recover()
            assert again.healed_pages == 0, f"crash point {index}"
            assert self._snapshot(db) == state, f"crash point {index}"
