"""Corruption-injection tests: every invariant check provably fires.

Each test builds a healthy structure, verifies the validator accepts it,
injects one targeted corruption, and asserts the matching
:class:`~repro.invariants.InvariantViolation` (or ``TypeError``) is
raised with a diagnostic that names the broken contract.  A final group
checks the ``REPRO_CHECKS`` gate itself: corrupted structures must run
*silently* when checks are off.
"""

import random

import pytest

from repro import invariants, kernels
from repro.core import QueryBox, UBTree, ZSpace
from repro.core.tetris import TetrisScan
from repro.invariants import (
    InvariantViolation,
    StreamChecker,
    require_instance,
    validate_bptree,
    validate_buffer_pool,
    validate_ubtree,
)
from repro.storage import BufferPool, SimulatedDisk

BITS = (4, 4)


@pytest.fixture(autouse=True)
def checks_off_between_tests():
    """Each test opts in explicitly; never leak the flag across tests."""
    previous = invariants.set_enabled(False)
    yield
    invariants.set_enabled(previous)


def make_ubtree(count=80, page_capacity=4, seed=7):
    disk = SimulatedDisk()
    pool = BufferPool(disk, capacity=256)
    ubtree = UBTree(pool, ZSpace(BITS), page_capacity=page_capacity)
    rng = random.Random(seed)
    rows = [
        (tuple(rng.randrange(1 << b) for b in BITS), index)
        for index in range(count)
    ]
    ubtree.bulk_load(rows)
    return ubtree, pool


def leaf_pages(ubtree):
    return list(ubtree.tree.iterate_leaves(charge=False))


# ----------------------------------------------------------------------
# B+-tree structure
# ----------------------------------------------------------------------
class TestBPTreeCorruption:
    def test_healthy_tree_validates(self):
        ubtree, _ = make_ubtree()
        validate_bptree(ubtree.tree)

    def test_leaf_key_order_violation_fires(self):
        ubtree, _ = make_ubtree()
        leaf = next(p for p in leaf_pages(ubtree) if len(p.records) >= 2)
        leaf.records.reverse()
        leaf.version += 1
        with pytest.raises(InvariantViolation, match="order"):
            validate_bptree(ubtree.tree)

    def test_separator_containment_violation_fires(self):
        ubtree, _ = make_ubtree()
        tree = ubtree.tree
        assert tree.height > 1, "need inner nodes for this corruption"
        # move the first leaf's smallest record into the last leaf: its
        # key now sits far below that leaf's lower separator bound
        leaves = leaf_pages(ubtree)
        record = leaves[0].records[0]
        leaves[-1].records.insert(0, record)
        leaves[-1].version += 1
        del leaves[0].records[0]
        leaves[0].version += 1
        with pytest.raises(InvariantViolation, match="separator"):
            validate_bptree(tree)

    def test_record_count_mismatch_fires(self):
        ubtree, _ = make_ubtree()
        ubtree.tree.record_count += 1
        with pytest.raises(InvariantViolation, match="record_count"):
            validate_bptree(ubtree.tree)

    def test_leaf_count_mismatch_fires(self):
        ubtree, _ = make_ubtree()
        ubtree.tree.leaf_count += 1
        with pytest.raises(InvariantViolation, match="leaf_count"):
            validate_bptree(ubtree.tree)

    def test_broken_sibling_chain_fires(self):
        ubtree, _ = make_ubtree()
        leaves = leaf_pages(ubtree)
        assert len(leaves) >= 3
        # short-circuit the chain past one leaf
        leaves[0].payload["next"] = leaves[2].page_id
        with pytest.raises(InvariantViolation):
            validate_bptree(ubtree.tree)

    def test_unaccounted_overflow_fires(self):
        # distinct points -> distinct Z-addresses -> no legitimate
        # overflow pages from equal-key runs
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=256)
        ubtree = UBTree(pool, ZSpace(BITS), page_capacity=4)
        rng = random.Random(11)
        universe = [(x, y) for x in range(16) for y in range(16)]
        ubtree.bulk_load(
            [(point, i) for i, point in enumerate(rng.sample(universe, 60))]
        )
        assert ubtree.tree.overflow_pages == 0
        # stuff a leaf beyond capacity by duplicating its largest key
        leaf = leaf_pages(ubtree)[0]
        key, value = leaf.records[-1]
        while len(leaf.records) <= leaf.capacity:
            leaf.records.append((key, value))
            leaf.version += 1
        ubtree.tree.record_count = sum(
            len(p.records) for p in leaf_pages(ubtree)
        )
        with pytest.raises(InvariantViolation, match="capacity"):
            validate_bptree(ubtree.tree)


# ----------------------------------------------------------------------
# UB-Tree Z-region contract
# ----------------------------------------------------------------------
class TestUBTreeCorruption:
    def test_healthy_ubtree_validates(self):
        ubtree, _ = make_ubtree()
        validate_ubtree(ubtree)

    def test_stored_address_inconsistent_with_point_fires(self):
        ubtree, _ = make_ubtree()
        leaf = next(p for p in leaf_pages(ubtree) if p.records)
        z_address, (point, payload) = leaf.records[0]
        other = tuple((c + 1) % (1 << b) for c, b in zip(point, BITS))
        assert ubtree.space.z_address(other) != z_address
        leaf.records[0] = (z_address, (other, payload))
        leaf.version += 1
        with pytest.raises(InvariantViolation, match="inconsistent"):
            validate_ubtree(ubtree)

    def test_check_invariants_entry_point_raises_unconditionally(self):
        # the explicit debug entry point must not depend on REPRO_CHECKS
        assert not invariants.enabled()
        ubtree, _ = make_ubtree()
        ubtree.tree.record_count += 1
        with pytest.raises(AssertionError):
            ubtree.check_invariants()


# ----------------------------------------------------------------------
# buffer-pool accounting
# ----------------------------------------------------------------------
class TestBufferAccounting:
    def test_healthy_pool_validates(self):
        ubtree, pool = make_ubtree()
        list(ubtree.range_query(QueryBox((0, 0), (15, 15))))
        validate_buffer_pool(pool)
        assert pool.lookups == pool.hits + pool.misses
        assert pool.disk_fetches == pool.misses

    def test_tampered_hit_counter_fires(self):
        ubtree, pool = make_ubtree()
        list(ubtree.range_query(QueryBox((0, 0), (15, 15))))
        pool.hits += 1
        with pytest.raises(InvariantViolation):
            validate_buffer_pool(pool)

    def test_tampered_fetch_counter_fires(self):
        ubtree, pool = make_ubtree()
        list(ubtree.range_query(QueryBox((0, 0), (15, 15))))
        pool.disk_fetches += 1
        with pytest.raises(InvariantViolation):
            validate_buffer_pool(pool)

    def test_get_validates_when_enabled(self):
        ubtree, pool = make_ubtree()
        first = leaf_pages(ubtree)[0].page_id
        pool.drop_all()
        pool.misses -= 1  # corrupt: one historical miss vanishes
        with invariants.checks():
            with pytest.raises(InvariantViolation):
                pool.get(first)


# ----------------------------------------------------------------------
# Tetris output stream
# ----------------------------------------------------------------------
class TestStreamChecker:
    SPACE = QueryBox((0, 0), (10, 10))

    def test_ordered_stream_passes(self):
        checker = StreamChecker((0,), False, self.SPACE)
        for point in [(1, 9), (2, 0), (2, 4), (7, 7)]:
            checker.observe(point)

    def test_out_of_order_emission_fires(self):
        checker = StreamChecker((0,), False, self.SPACE)
        checker.observe((5, 5))
        with pytest.raises(InvariantViolation, match="nondecreasing"):
            checker.observe((4, 9))

    def test_descending_direction_respected(self):
        checker = StreamChecker((0,), True, self.SPACE)
        checker.observe((5, 5))
        checker.observe((5, 9))  # tie on the sort dim is fine
        with pytest.raises(InvariantViolation, match="nonincreasing"):
            checker.observe((6, 0))

    def test_composite_sort_key(self):
        checker = StreamChecker((1, 0), False, self.SPACE)
        checker.observe((9, 2))
        checker.observe((0, 3))
        with pytest.raises(InvariantViolation):
            checker.observe((8, 2))

    def test_non_member_emission_fires(self):
        checker = StreamChecker((0,), False, self.SPACE)
        with pytest.raises(InvariantViolation, match="outside"):
            checker.observe((11, 0))

    def test_wired_into_tetris_scan(self):
        ubtree, _ = make_ubtree()
        box = QueryBox((2, 1), (13, 12))
        expected = list(TetrisScan(ubtree, box, 0))
        with invariants.checks():
            observed = list(TetrisScan(ubtree, box, 0))
        assert observed == expected


# ----------------------------------------------------------------------
# cross-backend kernel parity
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="parity spot checks need a second backend",
)
class TestKernelParity:
    def test_missed_version_bump_is_caught(self):
        """The defect class R003 exists for, caught at runtime.

        Prime the NumPy backend's columnar cache with one scan, mutate a
        page's stored point *without* bumping ``Page.version``, and
        re-scan: the stale cache and the pure-Python reference now
        disagree, and the parity check localizes it to the page.
        """
        ubtree, _ = make_ubtree()
        box = QueryBox((0, 0), (15, 15))
        with kernels.use_backend("numpy"):
            list(TetrisScan(ubtree, box, 0))  # populate the page cache
            leaf = next(p for p in leaf_pages(ubtree) if p.records)
            z_address, (point, payload) = leaf.records[0]
            other = tuple((c + 1) % (1 << b) for c, b in zip(point, BITS))
            leaf.records[0] = (z_address, (other, payload))  # no bump!
            with invariants.checks():
                with pytest.raises(InvariantViolation, match="diverge"):
                    list(TetrisScan(ubtree, box, 0))

    def test_honest_mutation_passes(self):
        ubtree, _ = make_ubtree()
        box = QueryBox((0, 0), (15, 15))
        with kernels.use_backend("numpy"):
            list(TetrisScan(ubtree, box, 0))
            leaf = next(p for p in leaf_pages(ubtree) if p.records)
            z_address, (point, payload) = leaf.records[0]
            leaf.records[0] = (z_address, (point, "renamed"))
            leaf.version += 1  # honest mutation: cache invalidated
            with invariants.checks():
                list(TetrisScan(ubtree, box, 0))


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------
class TestGate:
    def test_disabled_checks_stay_silent_on_corruption(self):
        ubtree, pool = make_ubtree()
        ubtree.tree.record_count += 1
        pool.hits += 5
        assert not invariants.enabled()
        # engine paths run the corrupted structures without complaint
        list(ubtree.range_query(QueryBox((0, 0), (15, 15))))
        list(TetrisScan(ubtree, QueryBox((0, 0), (15, 15)), 0))

    def test_checks_context_manager_restores(self):
        assert not invariants.enabled()
        with invariants.checks():
            assert invariants.enabled()
            with invariants.checks(False):
                assert not invariants.enabled()
            assert invariants.enabled()
        assert not invariants.enabled()

    def test_engine_mutations_validate_under_checks(self):
        with invariants.checks():
            ubtree, _ = make_ubtree(count=40)  # bulk_load validates
            ubtree.insert((3, 9), "late")
            assert ubtree.delete((3, 9), "late")
            validate_ubtree(ubtree)

    def test_require_instance_narrows_or_raises(self):
        assert require_instance(3, int, "test") == 3
        with pytest.raises(TypeError, match="test requires a int"):
            require_instance("3", int, "test")

    def test_violation_is_assertion_error(self):
        assert issubclass(InvariantViolation, AssertionError)
