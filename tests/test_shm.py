"""Tests for the shared-memory column store (``repro.kernels.shm``).

The contracts under test are the ones slab parallelism leans on:

* workers see a read-only, zero-copy view of exactly the columns the
  coordinator staged (version-stamped — stale reads are impossible);
* every segment a store creates is unlinked by the time it closes, even
  when the scan raises mid-slab (the leak contract);
* a page mutation (version bump) retires the old segment immediately;
* shm residency follows buffer-pool residency when a pool is bound.
"""

import pytest

np = pytest.importorskip(
    "numpy", reason="the shared-memory store is NumPy-only", exc_type=ImportError
)

from repro import invariants
from repro.kernels import shm
from repro.kernels.shm import (
    MissingSegmentError,
    SharedColumnStore,
    StaleSegmentError,
    shared_columns,
)


@pytest.fixture
def store():
    built = SharedColumnStore(label="test")
    yield built
    built.close()


def columns_of(rows: int, dims: int = 2, seed: int = 7) -> "np.ndarray":
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**40, size=(rows, dims), dtype=np.uint64)


# ----------------------------------------------------------------------
# put / get / attach semantics
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_put_returns_equal_read_only_view(self, store):
        columns = columns_of(64)
        view = store.put(page_id=3, version=0, columns=columns)
        assert np.array_equal(view, columns)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 1

    def test_get_round_trips_without_copy_semantics(self, store):
        columns = columns_of(64)
        store.put(3, 0, columns)
        view = store.get(3, 0)
        assert view is not None
        assert np.array_equal(view, columns)
        assert not view.flags.writeable
        assert store.stats.attached == 1

    def test_get_unknown_page_is_a_miss(self, store):
        assert store.get(99, 0) is None

    def test_get_with_newer_version_is_a_stale_miss(self, store):
        store.put(3, 0, columns_of(16))
        assert store.get(3, 1) is None
        assert store.stats.stale_misses == 1

    def test_attach_is_strict_missing(self, store):
        with pytest.raises(MissingSegmentError):
            store.attach(99, 0)

    def test_attach_is_strict_stale(self, store):
        store.put(3, 0, columns_of(16))
        with pytest.raises(StaleSegmentError):
            store.attach(3, 1)

    def test_attach_hit(self, store):
        columns = columns_of(16)
        store.put(3, 5, columns)
        assert np.array_equal(store.attach(3, 5), columns)

    def test_put_after_close_is_rejected_not_fatal(self, store):
        store.close()
        columns = columns_of(8)
        returned = store.put(1, 0, columns)
        assert returned is columns  # private memory, scan keeps working
        assert store.stats.rejected_puts == 1


# ----------------------------------------------------------------------
# version-stamped invalidation
# ----------------------------------------------------------------------
class TestVersionBump:
    def test_reput_with_new_version_retires_the_old_segment(self, store):
        store.put(3, 0, columns_of(16, seed=1))
        (old_name,) = shm._segment_names(store)
        fresh = columns_of(16, seed=2)
        store.put(3, 1, fresh)
        assert not shm.segment_exists(old_name)  # unlinked at retire time
        assert store.stats.retired == 1
        view = store.get(3, 1)
        assert view is not None and np.array_equal(view, fresh)
        assert store.live_segments == 1

    def test_old_view_stays_valid_after_replacement(self, store):
        # POSIX keeps an unlinked mapping alive while it is mapped: a
        # reader that attached before the bump finishes its slab safely.
        first = columns_of(16, seed=1)
        store.put(3, 0, first)
        old_view = store.get(3, 0)
        store.put(3, 1, columns_of(16, seed=2))
        assert old_view is not None
        assert np.array_equal(old_view, first)

    def test_discard_unlinks(self, store):
        store.put(3, 0, columns_of(16))
        (name,) = shm._segment_names(store)
        assert store.discard(3) is True
        assert not shm.segment_exists(name)
        assert store.get(3, 0) is None
        assert store.discard(3) is False  # idempotent


# ----------------------------------------------------------------------
# the leak contract
# ----------------------------------------------------------------------
class TestLeakContract:
    def test_close_unlinks_every_segment(self):
        store = SharedColumnStore()
        for page_id in range(5):
            store.put(page_id, 0, columns_of(8, seed=page_id))
        names = shm._segment_names(store)
        assert len(names) == 5
        store.close()
        assert all(not shm.segment_exists(name) for name in names)
        assert store.live_segments == 0
        assert store.closed

    def test_close_is_idempotent(self, store):
        store.put(0, 0, columns_of(8))
        store.close()
        store.close()
        assert store.stats.retired == 1

    def test_shared_columns_unlinks_on_mid_slab_error(self):
        names: list[str] = []
        with pytest.raises(RuntimeError, match="mid-slab"):
            with shared_columns(label="crash") as store:
                for page_id in range(3):
                    store.put(page_id, 0, columns_of(8, seed=page_id))
                names = shm._segment_names(store)
                raise RuntimeError("scan failed mid-slab")
        assert len(names) == 3
        assert all(not shm.segment_exists(name) for name in names)
        assert shm.active_store() is None

    def test_shared_columns_activates_and_deactivates(self):
        assert shm.active_store() is None
        with shared_columns(label="scan") as store:
            assert shm.active_store() is store
        assert shm.active_store() is None
        assert store.closed

    def test_double_activation_rejected(self, store):
        shm.activate(store)
        try:
            with pytest.raises(RuntimeError):
                shm.activate(SharedColumnStore())
        finally:
            shm.deactivate()

    def test_ledger_validates_under_checks(self, store):
        previous = invariants.set_enabled(True)
        try:
            store.put(0, 0, columns_of(8))
            store.put(0, 1, columns_of(8))  # retire + recreate
            store.discard(0)
            store.close()
        finally:
            invariants.set_enabled(previous)
        assert store.stats.created == 2
        assert store.stats.retired == 2
        assert store.stats.unlinked == 2


# ----------------------------------------------------------------------
# buffer-pool binding: shm residency follows pool residency
# ----------------------------------------------------------------------
class TestPoolBinding:
    def test_eviction_retires_the_matching_segment(self):
        from repro.storage import BufferPool, SimulatedDisk

        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=4)
        store = SharedColumnStore(label="bound")
        store.bind_pool(pool)
        try:
            page = disk.allocate(4)
            page.add((0, 0))
            disk.write(page)
            pool.get(page.page_id)
            store.put(page.page_id, 0, columns_of(4))
            (name,) = shm._segment_names(store)
            pool.evict(page.page_id)
            assert not shm.segment_exists(name)
            assert store.get(page.page_id, 0) is None
        finally:
            store.close()
        # close() detaches the observer: later evictions must not call
        # into a closed store
        pool.get(page.page_id)
        pool.evict(page.page_id)

    def test_double_bind_rejected(self, store):
        from repro.storage import BufferPool, SimulatedDisk

        pool = BufferPool(SimulatedDisk(), capacity=4)
        store.bind_pool(pool)
        with pytest.raises(RuntimeError):
            store.bind_pool(pool)

    def test_drop_all_retires_everything(self):
        from repro.storage import BufferPool, SimulatedDisk

        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=8)
        store = SharedColumnStore()
        store.bind_pool(pool)
        try:
            for seed in range(3):
                page = disk.allocate(4)
                page.add((0, 0))
                disk.write(page)
                pool.get(page.page_id)
                store.put(page.page_id, 0, columns_of(4, seed=seed))
            names = shm._segment_names(store)
            pool.drop_all()
            assert all(not shm.segment_exists(name) for name in names)
            assert store.live_segments == 0
        finally:
            store.close()
