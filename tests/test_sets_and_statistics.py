"""Tests for sorted-stream set operations and planner statistics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner import AttributeHistogram, PhysicalDesign, TableStatistics
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import (
    Difference,
    Distinct,
    Intersect,
    Union,
    UnionAll,
)


def rows(values):
    return [(v,) for v in values]


KEY = lambda r: r[0]  # noqa: E731


class TestDistinct:
    def test_basic(self):
        assert list(Distinct(rows([1, 1, 2, 3, 3, 3]), KEY)) == rows([1, 2, 3])

    def test_empty(self):
        assert list(Distinct([], KEY)) == []

    def test_no_duplicates(self):
        assert list(Distinct(rows([1, 2, 3]), KEY)) == rows([1, 2, 3])

    def test_keeps_first_of_group(self):
        data = [(1, "a"), (1, "b"), (2, "c")]
        assert list(Distinct(data, KEY)) == [(1, "a"), (2, "c")]


class TestUnion:
    def test_union_all_merges_sorted(self):
        out = list(UnionAll([rows([1, 3, 5]), rows([2, 3, 6])], KEY))
        assert out == rows([1, 2, 3, 3, 5, 6])

    def test_union_deduplicates(self):
        out = list(Union([rows([1, 3, 5]), rows([2, 3, 6]), rows([3])], KEY))
        assert out == rows([1, 2, 3, 5, 6])

    def test_union_empty_inputs(self):
        assert list(Union([[], []], KEY)) == []
        assert list(Union([rows([1]), []], KEY)) == rows([1])


class TestIntersect:
    def test_basic(self):
        out = list(Intersect(rows([1, 2, 2, 4, 7]), rows([2, 4, 5]), KEY))
        assert out == rows([2, 4])

    def test_disjoint(self):
        assert list(Intersect(rows([1, 3]), rows([2, 4]), KEY)) == []

    def test_one_empty(self):
        assert list(Intersect(rows([1, 2]), [], KEY)) == []
        assert list(Intersect([], rows([1, 2]), KEY)) == []


class TestDifference:
    def test_basic(self):
        out = list(Difference(rows([1, 2, 3, 4, 5]), rows([2, 4, 9]), KEY))
        assert out == rows([1, 3, 5])

    def test_right_empty(self):
        assert list(Difference(rows([1, 2]), [], KEY)) == rows([1, 2])

    def test_left_subset(self):
        assert list(Difference(rows([2, 4]), rows([1, 2, 3, 4, 5]), KEY)) == []

    def test_duplicates_collapse_to_one(self):
        out = list(Difference(rows([1, 1, 2, 2]), rows([2]), KEY))
        assert out == rows([1])


@given(
    st.lists(st.integers(0, 30), max_size=60),
    st.lists(st.integers(0, 30), max_size=60),
)
@settings(max_examples=150, deadline=None)
def test_set_operations_match_python_sets(a_values, b_values):
    a = rows(sorted(a_values))
    b = rows(sorted(b_values))
    a_set, b_set = set(a_values), set(b_values)
    assert [r[0] for r in Union([a, b], KEY)] == sorted(a_set | b_set)
    assert [r[0] for r in Intersect(a, b, KEY)] == sorted(a_set & b_set)
    assert [r[0] for r in Difference(a, b, KEY)] == sorted(a_set - b_set)
    assert [r[0] for r in Distinct(a, KEY)] == sorted(a_set)


# ----------------------------------------------------------------------
# histograms and quantile normalization
# ----------------------------------------------------------------------
class TestAttributeHistogram:
    def test_uniform_data_matches_uniform_assumption(self):
        histogram = AttributeHistogram.build(range(1024), 1023, bucket_count=64)
        assert histogram.selectivity(0, 511) == pytest.approx(0.5, abs=0.01)
        assert histogram.cdf(1023) == 1.0
        assert histogram.cdf(-1) == 0.0

    def test_skewed_data(self):
        # 90% of values in the bottom 10% of the domain
        codes = [i % 100 for i in range(900)] + [1000] * 100
        histogram = AttributeHistogram.build(codes, 1023, bucket_count=64)
        assert histogram.selectivity(0, 101) > 0.8
        assert histogram.selectivity(500, 900) < 0.05

    def test_empty_histogram_falls_back_to_uniform(self):
        histogram = AttributeHistogram.build([], 1023)
        assert histogram.selectivity(0, 511) == pytest.approx(0.5, abs=0.01)

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            AttributeHistogram.build([2000], 1023)

    def test_inverted_range(self):
        histogram = AttributeHistogram.build(range(100), 99)
        assert histogram.selectivity(50, 10) == 0.0

    def test_normalized_range_monotone(self):
        histogram = AttributeHistogram.build(range(256), 255, bucket_count=16)
        lo1, hi1 = histogram.normalized_range(0, 63)
        lo2, hi2 = histogram.normalized_range(0, 127)
        assert hi1 <= hi2
        assert lo1 == lo2 == 0.0

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300), st.data())
    @settings(max_examples=100, deadline=None)
    def test_cdf_close_to_empirical(self, codes, data):
        histogram = AttributeHistogram.build(codes, 255, bucket_count=32)
        probe = data.draw(st.integers(0, 255))
        empirical = sum(1 for c in codes if c <= probe) / len(codes)
        # the interpolation error of an equi-width histogram is bounded by
        # the mass of the bucket the probe falls into
        bucket = min(31, int(probe / 8))
        bucket_mass = histogram.counts[bucket] / histogram.total
        assert abs(histogram.cdf(probe) - empirical) <= bucket_mass + 1e-9


class TestTableStatistics:
    def make_world(self, skew=True, rows_count=4000):
        schema = Schema(
            [
                Attribute("a1", IntEncoder(0, 1023)),
                Attribute("a2", IntEncoder(0, 1023)),
            ]
        )
        rng = random.Random(8)
        if skew:
            data = [
                (min(1023, int(rng.expovariate(1 / 80))), rng.randrange(1024))
                for _ in range(rows_count)
            ]
        else:
            data = [
                (rng.randrange(1024), rng.randrange(1024))
                for _ in range(rows_count)
            ]
        return schema, data

    def test_gather_and_estimate(self):
        schema, data = self.make_world(skew=False)
        stats = TableStatistics.gather(schema, data, ("a1", "a2"))
        assert stats.selectivity("a1", 0, 511) == pytest.approx(0.5, abs=0.05)

    def test_skew_changes_estimates(self):
        schema, data = self.make_world(skew=True)
        stats = TableStatistics.gather(schema, data, ("a1",))
        # the bottom 1/8 of the domain holds most of the exponential mass
        true_fraction = sum(1 for r in data if r[0] <= 127) / len(data)
        estimated = stats.selectivity("a1", 0, 127)
        assert estimated == pytest.approx(true_fraction, abs=0.05)
        assert estimated > 0.6  # far from the uniform guess of 0.125

    def test_quantile_mapping_feeds_the_planner(self):
        """On skewed data, the histogram-normalized range prices the
        restriction by actual data volume, not domain arithmetic."""
        schema, data = self.make_world(skew=True)
        db = Database(buffer_pages=64)
        heap = db.create_heap_table("heap", schema, 40)
        heap.load(data)
        ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
        ub.load(data)
        design = PhysicalDesign(attributes=("a1", "a2"), heap=heap, ub=ub)
        stats = TableStatistics.gather(schema, data, ("a1", "a2"))

        uniform = design.normalized_restrictions({"a1": (0, 127)})
        informed = design.normalized_restrictions({"a1": (0, 127)}, stats)
        assert uniform["a1"][1] == pytest.approx(0.125)
        assert informed["a1"][1] > 0.6  # quantile position, not domain position
