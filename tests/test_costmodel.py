"""Tests for the Section 4 cost model: formula values, shapes, crossovers."""

import math

import pytest

from repro.costmodel import (
    CostParameters,
    SECTION_4_PARAMS,
    SECTION_5_PARAMS,
    c_fts,
    c_fts_sort,
    c_iot,
    c_iot_sort,
    c_scan,
    c_sort,
    c_tetris,
    l_splits,
    l_splits_lower,
    merge_sort_temp_pages,
    n_intervals,
    n_regions_dim,
    p_incomplete,
    p_sort,
    result_pages,
    selectivity_to_range,
    tetris_cache_pages,
    tetris_first_response,
    tetris_regions,
)


class TestBasicFormulas:
    def test_c_scan(self):
        # ceil(k/C)*t_pi + max(k, C)*t_tau with C=16
        assert c_scan(32) == pytest.approx(2 * 0.010 + 32 * 0.001)
        assert c_scan(1) == pytest.approx(0.010 + 16 * 0.001)
        assert c_scan(0) == 0.0

    def test_c_fts_paper_value(self):
        # 125k pages at (10ms/16 + 1ms) = 203.1s — the FTS line of Fig. 4-2
        assert c_fts(125_000) == pytest.approx(203.125)

    def test_c_iot_linear_in_selectivity(self):
        assert c_iot(125_000, 1.0) == pytest.approx(125_000 * 0.011)
        assert c_iot(125_000, 0.2) == pytest.approx(0.2 * 125_000 * 0.011)
        assert c_iot(125_000, 0.0) == 0.0

    def test_result_pages(self):
        assert result_pages(1000, [0.5, 0.2]) == pytest.approx(100.0)
        assert result_pages(1000, []) == 1000.0

    def test_p_sort_zero_when_in_memory(self):
        params = CostParameters(memory_pages=4096)
        assert p_sort(1000, [0.5], params) == 0.0

    def test_p_sort_formula(self):
        params = CostParameters(memory_pages=1000, merge_degree=2)
        data = 16_000.0  # 16x memory -> log2(16) = 4 passes
        value = p_sort(32_000, [0.5], params)
        assert value == pytest.approx(2 * data * 4)

    def test_c_fts_sort_additive(self):
        params = SECTION_4_PARAMS
        assert c_fts_sort(125_000, [0.5], params) == pytest.approx(
            c_fts(125_000, params) + c_sort(125_000, [0.5], params)
        )

    def test_c_iot_sort_additive_and_presorted(self):
        params = SECTION_4_PARAMS
        full = c_iot_sort(125_000, [0.2, 1.0], params)
        assert full == pytest.approx(
            c_iot(125_000, 0.2, params) + c_sort(125_000, [0.2, 1.0], params)
        )
        presorted = c_iot_sort(125_000, [0.2, 1.0], params, sort_on_leading=True)
        assert presorted == pytest.approx(c_iot(125_000, 0.2, params))

    def test_section5_params(self):
        assert SECTION_5_PARAMS.t_pi == pytest.approx(0.008)
        assert SECTION_5_PARAMS.t_tau == pytest.approx(0.0007)


class TestRegionModel:
    def test_l_splits_distribution(self):
        # P = 125000 -> floor(log2) = 16 splits; d=2 -> 8 each
        assert l_splits_lower(2, 125_000) == 8
        assert l_splits(2, 125_000, 1) == 8
        assert l_splits(2, 125_000, 2) == 8
        # d=3 -> 16 = 3*5 + 1: dim 1 gets the extra split
        assert l_splits(3, 125_000, 1) == 6
        assert l_splits(3, 125_000, 2) == 5
        assert l_splits(3, 125_000, 3) == 5

    def test_l_splits_sum_invariant(self):
        for pages in (100, 1000, 125_000, 7):
            for dims in (1, 2, 3, 4):
                total = sum(l_splits(dims, pages, j) for j in range(1, dims + 1))
                assert total == int(math.log2(pages))

    def test_p_incomplete(self):
        # P = 3 * 2^14: fraction 1.5 -> probability 0.5 on the next dim
        pages = 3 * (1 << 14)  # floor(log2) = 15
        dims = 3  # 15 = 3*5, remainder 0 -> incomplete split on dim 1
        assert p_incomplete(dims, pages, 1) == pytest.approx(0.5)
        assert p_incomplete(dims, pages, 2) == 0.0

    def test_n_intervals_full_range(self):
        assert n_intervals(0.0, 1.0, 3) == 8

    def test_n_intervals_partial(self):
        assert n_intervals(0.0, 0.5, 3) == 5  # cells 0..4 by the paper's formula
        assert n_intervals(0.5, 1.0, 3) == 4
        assert n_intervals(1.0, 1.0, 1) == 1

    def test_n_intervals_rejects_bad_range(self):
        with pytest.raises(ValueError):
            n_intervals(0.6, 0.5, 3)
        with pytest.raises(ValueError):
            n_intervals(-0.1, 0.5, 3)

    def test_n_regions_monotone_in_selectivity(self):
        previous = 0.0
        for selectivity in (0.1, 0.3, 0.5, 0.8, 1.0):
            value = n_regions_dim(2, 125_000, 0.0, selectivity, 1)
            assert value >= previous
            previous = value

    def test_tetris_regions_product(self):
        ranges = [(0.0, 0.5), (0.0, 1.0)]
        expected = n_regions_dim(2, 125_000, 0.0, 0.5, 1) * n_regions_dim(
            2, 125_000, 0.0, 1.0, 2
        )
        assert tetris_regions(125_000, ranges) == pytest.approx(expected)

    def test_c_tetris_prices_random_accesses(self):
        ranges = [(0.0, 1.0), (0.0, 1.0)]
        regions = tetris_regions(125_000, ranges)
        assert c_tetris(125_000, ranges) == pytest.approx(0.011 * regions)

    def test_unrestricted_tetris_covers_about_all_pages(self):
        # with (0,1) ranges the model counts every region (2^16 for 125k pages
        # plus the incomplete-split fraction)
        regions = tetris_regions(125_000, [(0.0, 1.0), (0.0, 1.0)])
        assert 65_000 <= regions <= 131_072


class TestIntermediateStorage:
    def test_merge_sort_temp_linear(self):
        assert merge_sort_temp_pages(125_000, [0.2]) == pytest.approx(25_000)

    def test_tetris_cache_excludes_sort_dim(self):
        ranges = [(0.0, 0.2), (0.0, 1.0)]
        cache = tetris_cache_pages(125_000, ranges, 1)
        assert cache == pytest.approx(n_regions_dim(2, 125_000, 0.0, 0.2, 1))

    def test_tetris_cache_sqrt_shape(self):
        """cache ≈ sqrt(P * s1 * s2) for 2-d UB-Trees (Section 4.4)."""
        pages = 1 << 16
        cache = tetris_cache_pages(pages, [(0.0, 1.0), (0.0, 1.0)], 1)
        assert cache == pytest.approx(math.sqrt(pages), rel=0.01)

    def test_tetris_first_response_much_smaller_than_total(self):
        ranges = [(0.0, 0.2), (0.0, 1.0)]
        first = tetris_first_response(125_000, ranges, 1)
        total = c_tetris(125_000, ranges)
        assert first < total / 50

    def test_selectivity_to_range(self):
        assert selectivity_to_range(0.2) == (0.0, 0.2)
        assert selectivity_to_range(0.5, offset=0.25) == (0.25, 0.75)
        assert selectivity_to_range(0.9, offset=0.5) == (0.5, 1.0)
        with pytest.raises(ValueError):
            selectivity_to_range(1.5)


class TestPaperShapes:
    """The qualitative claims of Figures 4-2 and 4-3, as assertions."""

    PAGES = 125_000

    def line(self, selectivity):
        ranges = [(0.0, selectivity), (0.0, 1.0)]
        selectivities = [selectivity, 1.0]
        return {
            "tetris": c_tetris(self.PAGES, ranges),
            "fts-sort": c_fts_sort(self.PAGES, selectivities),
            "iot-a1-sort": c_iot_sort(self.PAGES, selectivities),
            "iot-a2": c_iot_sort(
                self.PAGES, [1.0, selectivity], sort_on_leading=True
            ),
        }

    def test_tetris_beats_fts_sort_everywhere(self):
        for selectivity in (0.05, 0.2, 0.5, 0.8, 1.0):
            costs = self.line(selectivity)
            assert costs["tetris"] < costs["fts-sort"], selectivity

    def test_iot_on_restricted_attr_wins_only_when_selective(self):
        selective = self.line(0.01)
        assert selective["iot-a1-sort"] < selective["fts-sort"]
        unselective = self.line(0.8)
        assert unselective["iot-a1-sort"] > unselective["fts-sort"]

    def test_iot_on_sort_attr_competitive_only_without_restriction(self):
        open_costs = self.line(1.0)
        # unrestricted: the presorted IOT pays all pages at random
        assert open_costs["iot-a2"] == pytest.approx(self.PAGES * 0.011)
        restricted = self.line(0.2)
        assert restricted["iot-a2"] > restricted["tetris"] * 3

    def test_table_size_scaling_keeps_ordering(self):
        """Figure 4-3: at s1 = 20 %, Tetris is cheapest once the sort spills."""
        for pages in (50_000, 125_000, 500_000):
            ranges = [(0.0, 0.2), (0.0, 1.0)]
            selectivities = [0.2, 1.0]
            tetris = c_tetris(pages, ranges)
            assert tetris < c_fts_sort(pages, selectivities)
            assert tetris < c_iot_sort(
                pages, [1.0, 0.2], sort_on_leading=True
            )

    def test_small_tables_sort_in_memory_and_fts_wins(self):
        """Below the work-memory threshold the merge factor is zero and a
        plain prefetched scan beats per-region random accesses — the left
        edge of Figure 4-3."""
        pages = 10_000  # restricted data (2 000 pages) < M = 4 096 pages
        assert c_sort(pages, [0.2, 1.0]) == 0.0
        assert c_fts_sort(pages, [0.2, 1.0]) < c_tetris(
            pages, [(0.0, 0.2), (0.0, 1.0)]
        )
