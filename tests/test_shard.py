"""Tests for the range-sharded coordinator (``repro.shard``).

The load-bearing claim: a sharded restricted sorted scan is
bit-identical to the unsharded scan — with no faults, across failover,
and through cross-copy repair — and every deviation from the clean path
is a typed error or an explicitly flagged partial result, never silent
wrong rows.
"""

import random

import pytest

from repro import invariants, kernels
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.shard import (
    ShardedDatabase,
    ShardFailedError,
    merge_shard_streams,
    register_shard_observer,
    unregister_shard_observer,
)
from repro.storage import FaultPlan
from repro.telemetry import TelemetryEvent

DIMS = ("a1", "a2")
QUERY = {"a1": (100, 900)}


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def make_rows(count: int, seed: int = 99) -> list[tuple]:
    rng = random.Random(seed)
    return [(rng.randrange(1024), rng.randrange(1024), i) for i in range(count)]


def oracle_rows(rows, restrictions, sort_attr, *, descending=False):
    """The unsharded engine's stream, the coordinator's ground truth."""
    db = Database()
    table = db.create_ub_table("oracle", make_schema(), DIMS, 32)
    table.bulk_load(rows)
    return list(
        table.tetris_scan(restrictions, sort_attr, descending=descending)
    )


def make_sharded(rows, *, shards=4, copies=1, **kwargs) -> ShardedDatabase:
    sdb = ShardedDatabase(
        make_schema(), DIMS, "a1", shards=shards, copies=copies, **kwargs
    )
    sdb.load(rows)
    return sdb


# ----------------------------------------------------------------------
# bit-identity on the clean path
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_matches_unsharded_scan(self):
        rows = make_rows(600)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")
        assert not result.degraded
        assert not result.partial

    def test_descending(self):
        rows = make_rows(600)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan(QUERY, "a2", descending=True)
        assert result.rows == oracle_rows(rows, QUERY, "a2", descending=True)

    def test_sort_on_shard_attribute(self):
        rows = make_rows(600)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan(QUERY, "a1")
        assert result.rows == oracle_rows(rows, QUERY, "a1")

    def test_duplicate_points_survive_sharding(self):
        rng = random.Random(3)
        rows = [(rng.randrange(8), rng.randrange(8), i) for i in range(400)]
        sdb = make_sharded(rows, shards=3)
        result = sdb.sorted_scan(None, "a2")
        assert result.rows == oracle_rows(rows, None, "a2")

    def test_unrestricted_scan(self):
        rows = make_rows(500)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan(None, "a2")
        assert result.rows == oracle_rows(rows, None, "a2")

    def test_empty_query(self):
        rows = make_rows(200)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan({"a1": (700, 100)}, "a2")
        assert result.rows == []
        assert result.per_shard_rows == (0, 0, 0, 0)

    def test_both_backends_agree(self):
        rows = make_rows(400)
        expected = oracle_rows(rows, QUERY, "a2")
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                sdb = make_sharded(rows)
                assert sdb.sorted_scan(QUERY, "a2").rows == expected

    def test_single_shard_degenerate(self):
        rows = make_rows(300)
        sdb = make_sharded(rows, shards=1)
        assert sdb.sorted_scan(QUERY, "a2").rows == oracle_rows(
            rows, QUERY, "a2"
        )

    def test_elapsed_accounting(self):
        rows = make_rows(400)
        sdb = make_sharded(rows)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.simulated_elapsed == max(result.per_shard_elapsed)
        assert result.simulated_elapsed > 0


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
class TestLoading:
    def test_rows_partition_across_shards(self):
        rows = make_rows(500)
        sdb = make_sharded(rows)
        assert sum(sdb.rows_loaded) == len(rows)
        assert sdb.total_rows == len(rows)

    def test_streaming_factory_load(self):
        rows = make_rows(500)
        calls = []

        def factory():
            calls.append(1)
            return iter(rows)  # a one-shot stream, regenerated per pass

        sdb = ShardedDatabase(make_schema(), DIMS, "a1", shards=3, copies=2)
        assert sdb.load(factory) == len(rows)
        assert len(calls) == 3 * 2  # one pass per (shard, copy)
        assert sdb.sorted_scan(QUERY, "a2").rows == oracle_rows(
            rows, QUERY, "a2"
        )

    def test_nondeterministic_source_rejected(self):
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            return make_rows(100 + state["calls"])

        sdb = ShardedDatabase(make_schema(), DIMS, "a1", shards=2, copies=2)
        with pytest.raises(ValueError, match="diverged"):
            sdb.load(flaky)

    def test_validator_accepts_fresh_load(self):
        sdb = make_sharded(make_rows(300), copies=2)
        invariants.validate_sharded_database(sdb)

    def test_validator_rejects_ledger_drift(self):
        sdb = make_sharded(make_rows(300), copies=2)
        sdb.rows_loaded[0] += 1
        with pytest.raises(invariants.InvariantViolation, match="ledger"):
            invariants.validate_sharded_database(sdb)

    def test_scan_under_repro_checks(self):
        rows = make_rows(300)
        with invariants.checks():
            sdb = make_sharded(rows, copies=2)
            result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")


# ----------------------------------------------------------------------
# the failure ladder
# ----------------------------------------------------------------------
class TestFailover:
    def test_mid_stream_death_resumes_on_replica(self):
        rows = make_rows(600)
        oracle = oracle_rows(rows, QUERY, "a2")
        sdb = make_sharded(rows, copies=2)
        sdb.kill_copy(1, 0, after_rows=40)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle
        assert [e.action for e in result.degradations] == ["failover"]
        event = result.degradations[0]
        assert (event.shard, event.copy, event.fallback_copy) == (1, 0, 1)
        assert sdb.health()[1] == ("dead", "ok")

    def test_mid_stream_death_descending(self):
        rows = make_rows(600)
        sdb = make_sharded(rows, copies=2)
        sdb.kill_copy(2, 0, after_rows=25)
        result = sdb.sorted_scan(QUERY, "a2", descending=True)
        assert result.rows == oracle_rows(rows, QUERY, "a2", descending=True)

    def test_death_at_scan_start_emits_failover(self):
        rows = make_rows(400)
        sdb = make_sharded(rows, copies=2)
        sdb.kill_copy(1, 0)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")
        assert [e.action for e in result.degradations] == ["failover"]

    def test_cascading_deaths_chain_failovers(self):
        rows = make_rows(600)
        sdb = make_sharded(rows, copies=3)
        sdb.kill_copy(1, 0, after_rows=20)
        sdb.kill_copy(1, 1, after_rows=30)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")
        assert [e.action for e in result.degradations] == [
            "failover",
            "failover",
        ]

    def test_last_copy_death_raises_typed_error(self):
        rows = make_rows(600)
        sdb = make_sharded(rows, copies=1)
        sdb.kill_copy(1, 0, after_rows=10)
        with pytest.raises(ShardFailedError) as excinfo:
            sdb.sorted_scan(QUERY, "a2")
        assert excinfo.value.shard == 1
        assert [e.action for e in excinfo.value.degradations] == ["failed"]

    def test_allow_partial_flags_lost_range(self):
        rows = make_rows(600)
        oracle = oracle_rows(rows, QUERY, "a2")
        sdb = make_sharded(rows, copies=1)
        sdb.kill_copy(1, 0, after_rows=10)
        result = sdb.sorted_scan(QUERY, "a2", allow_partial=True)
        assert result.partial
        (lost,) = result.failed_ranges
        kept = [
            row for row in oracle if not lost[0] <= row[0][0] <= lost[1]
        ]
        assert result.rows == kept
        assert [e.action for e in result.degradations] == ["abandoned"]

    def test_corrupt_pages_healed_from_peer(self):
        rows = make_rows(600)
        plan = FaultPlan(seed=5, corrupt_rate=0.30)
        sdb = make_sharded(
            rows,
            copies=2,
            fault_plans={(0, 0): plan},
            quarantine_threshold=2,
        )
        sdb.arm_faults()
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")
        repaired = [e for e in result.degradations if e.action == "repaired"]
        assert repaired
        assert all(e.repaired_pages for e in repaired)

    def test_transient_faults_retried_in_place(self):
        rows = make_rows(600)
        plan = FaultPlan(seed=11, transient_rate=0.05)
        sdb = make_sharded(rows, copies=2, fault_plans={(2, 0): plan})
        sdb.arm_faults()
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.rows == oracle_rows(rows, QUERY, "a2")
        assert all(
            event.shard == 2 for event in result.degradations
        )

    def test_slow_shard_still_bit_identical(self):
        rows = make_rows(600)
        plan = FaultPlan(seed=7, latency_rate=0.5)
        sdb = make_sharded(rows, copies=2, fault_plans={(1, 0): plan})
        baseline = sdb.sorted_scan(QUERY, "a2")
        sdb.reset_measurement()
        sdb.arm_faults()
        slow = sdb.sorted_scan(QUERY, "a2")
        assert slow.rows == baseline.rows == oracle_rows(rows, QUERY, "a2")
        assert slow.per_shard_elapsed[1] > baseline.per_shard_elapsed[1]


# ----------------------------------------------------------------------
# degradation telemetry
# ----------------------------------------------------------------------
class TestShardTelemetry:
    def test_events_share_the_telemetry_base(self):
        rows = make_rows(400)
        sdb = make_sharded(rows, copies=2)
        sdb.kill_copy(0, 0, after_rows=5)
        result = sdb.sorted_scan(QUERY, "a2")
        assert result.degradations
        for event in result.degradations:
            assert isinstance(event, TelemetryEvent)
            assert "shard" in event.describe()

    def test_observer_sees_exactly_the_scan_events(self):
        rows = make_rows(400)
        sdb = make_sharded(rows, copies=2)
        sdb.kill_copy(1, 0, after_rows=15)
        seen = []
        register_shard_observer(seen.append)
        try:
            result = sdb.sorted_scan(QUERY, "a2")
        finally:
            unregister_shard_observer(seen.append)
        assert tuple(seen) == result.degradations

    def test_observer_notified_on_typed_failure(self):
        rows = make_rows(400)
        sdb = make_sharded(rows, copies=1)
        sdb.kill_copy(0, 0, after_rows=5)
        seen = []
        register_shard_observer(seen.append)
        try:
            with pytest.raises(ShardFailedError):
                sdb.sorted_scan(QUERY, "a2")
        finally:
            unregister_shard_observer(seen.append)
        assert [event.action for event in seen] == ["failed"]

    def test_clean_scan_emits_nothing(self):
        rows = make_rows(300)
        sdb = make_sharded(rows, copies=2)
        seen = []
        register_shard_observer(seen.append)
        try:
            sdb.sorted_scan(QUERY, "a2")
        finally:
            unregister_shard_observer(seen.append)
        assert seen == []


# ----------------------------------------------------------------------
# the merge primitive
# ----------------------------------------------------------------------
class TestMergeStreams:
    def test_merges_in_key_order(self):
        streams = [
            [(1, ((1,), "a")), (5, ((5,), "b"))],
            [(2, ((2,), "c")), (9, ((9,), "d"))],
            [(0, ((0,), "e"))],
        ]
        merged = merge_shard_streams(streams)
        assert [key for key, _ in merged] == [0, 1, 2, 5, 9]

    def test_empty_inputs(self):
        assert merge_shard_streams([]) == []
        assert merge_shard_streams([[], []]) == []

    def test_single_stream_passthrough(self):
        stream = [(3, ((3,), "x")), (4, ((4,), "y"))]
        assert merge_shard_streams([stream, []]) == stream

    def test_matches_sorted_reference(self):
        rng = random.Random(17)
        streams = []
        everything = []
        for _ in range(5):
            keys = sorted(rng.randrange(10_000) for _ in range(200))
            stream = [(key, ((key,), None)) for key in keys]
            streams.append(stream)
            everything.extend(stream)
        merged = merge_shard_streams(streams)
        assert [key for key, _ in merged] == sorted(
            key for key, _ in everything
        )


# ----------------------------------------------------------------------
# construction guards
# ----------------------------------------------------------------------
class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shard count"):
            ShardedDatabase(make_schema(), DIMS, "a1", shards=0)

    def test_rejects_zero_copies(self):
        with pytest.raises(ValueError, match="at least one copy"):
            ShardedDatabase(make_schema(), DIMS, "a1", shards=2, copies=0)

    def test_rejects_non_index_shard_attribute(self):
        with pytest.raises(ValueError, match="not an index dimension"):
            ShardedDatabase(make_schema(), DIMS, "v", shards=2)

    def test_slabs_partition_the_domain(self):
        sdb = ShardedDatabase(make_schema(), DIMS, "a1", shards=5)
        edges = [(s.slab.lo, s.slab.hi) for s in sdb.shards]
        assert edges[0][0] == 0
        assert edges[-1][1] == 1023
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert lo == hi + 1
