"""Tests for the unified degradation telemetry (``repro.telemetry``).

Three event families — planner :class:`DegradationEvent`, parallel
:class:`ExecutorFallbackEvent` and shard :class:`ShardDegradationEvent`
— share one frozen-dataclass base and one observer-registry delivery
mechanism, and every downgrade path emits exactly one event.
"""

from dataclasses import FrozenInstanceError, dataclass

import pytest

from repro.costmodel import CostParameters
from repro.planner import (
    DegradationEvent,
    ExecutorFallbackEvent,
    PlanExhaustedError,
    execute_sorted_query,
    register_degradation_observer,
    unregister_degradation_observer,
)
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.shard import ShardDegradationEvent
from repro.storage import (
    FaultPlan,
    RecoveryEvent,
    register_recovery_observer,
    unregister_recovery_observer,
)
from repro.storage.faults import CORRUPT
from repro.telemetry import ObserverRegistry, TelemetryEvent
from repro.txn import TxnEvent
from tools.chaos import build_world

PARAMS = CostParameters(memory_pages=8)
QUERY = {"a1": (100, 900)}


@dataclass(frozen=True)
class _ProbeEvent(TelemetryEvent):
    label: str

    def describe(self) -> str:
        return f"probe {self.label}"


# ----------------------------------------------------------------------
# the shared base
# ----------------------------------------------------------------------
class TestTelemetryEvent:
    def test_all_families_extend_the_base(self):
        assert issubclass(DegradationEvent, TelemetryEvent)
        assert issubclass(ExecutorFallbackEvent, TelemetryEvent)
        assert issubclass(ShardDegradationEvent, TelemetryEvent)
        assert issubclass(RecoveryEvent, TelemetryEvent)
        assert issubclass(TxnEvent, TelemetryEvent)

    def test_events_are_frozen(self):
        event = _ProbeEvent(label="x")
        with pytest.raises(FrozenInstanceError):
            event.label = "y"  # type: ignore[misc]

    def test_base_describe_is_abstract(self):
        with pytest.raises(NotImplementedError):
            TelemetryEvent().describe()

    def test_shard_event_describe_variants(self):
        failover = ShardDegradationEvent(
            shard=1,
            copy=0,
            action="failover",
            error_type="TransientIOError",
            error="boom",
            fallback_copy=1,
        )
        assert "copy 0 -> copy 1" in failover.describe()
        repaired = ShardDegradationEvent(
            shard=2,
            copy=1,
            action="repaired",
            error_type="QuarantinedPageError",
            error="page 7",
            repaired_pages=(7, 9),
        )
        assert "pages [7,9]" in repaired.describe()


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestObserverRegistry:
    def test_emit_reaches_every_observer_in_order(self):
        registry: ObserverRegistry[_ProbeEvent] = ObserverRegistry()
        calls = []
        registry.register(lambda e: calls.append(("a", e.label)))
        registry.register(lambda e: calls.append(("b", e.label)))
        registry.emit(_ProbeEvent(label="one"))
        assert calls == [("a", "one"), ("b", "one")]

    def test_unregister_stops_delivery(self):
        registry: ObserverRegistry[_ProbeEvent] = ObserverRegistry()
        calls = []
        registry.register(calls.append)
        registry.unregister(calls.append)
        registry.emit(_ProbeEvent(label="gone"))
        assert calls == []

    def test_unregister_unknown_observer_is_harmless(self):
        registry: ObserverRegistry[_ProbeEvent] = ObserverRegistry()
        registry.unregister(lambda e: None)  # never registered
        registry.emit(_ProbeEvent(label="still fine"))

    def test_emit_without_observers_is_a_no_op(self):
        registry: ObserverRegistry[_ProbeEvent] = ObserverRegistry()
        registry.emit(_ProbeEvent(label="quiet"))


# ----------------------------------------------------------------------
# exactly-once planner emission
# ----------------------------------------------------------------------
class TestPlannerEmission:
    def test_degraded_query_notifies_observer_exactly_once(self):
        db, design, data = build_world(FaultPlan(), rows=600)
        target = design.heap.heap.page_ids[0]
        db.disk.plan = FaultPlan(seed=0, scripted_reads=((target, 0, CORRUPT),))
        db.arm_faults()
        seen = []
        register_degradation_observer(seen.append)
        try:
            result = execute_sorted_query(design, QUERY, "a2", PARAMS)
        finally:
            unregister_degradation_observer(seen.append)
            db.disarm_faults()
        if not result.degraded:
            pytest.skip("initial plan avoided the scripted page")
        assert tuple(seen) == result.degradations
        assert all(isinstance(event, TelemetryEvent) for event in seen)

    def test_clean_query_emits_nothing(self):
        db, design, data = build_world(rows=400)
        seen = []
        register_degradation_observer(seen.append)
        try:
            result = execute_sorted_query(design, QUERY, "a2", PARAMS)
        finally:
            unregister_degradation_observer(seen.append)
        assert not result.degraded
        assert seen == []

    def test_exhausted_plan_still_emits_each_event_once(self):
        db, design, data = build_world(FaultPlan(), rows=400)
        db.disk.plan = FaultPlan(seed=0, transient_rate=1.0)
        db.arm_faults()
        seen = []
        register_degradation_observer(seen.append)
        try:
            with pytest.raises(PlanExhaustedError) as excinfo:
                execute_sorted_query(design, QUERY, "a2", PARAMS)
        finally:
            unregister_degradation_observer(seen.append)
            db.disarm_faults()
        assert tuple(seen) == excinfo.value.degradations
        assert len(seen) == len(set(id(event) for event in seen))


# ----------------------------------------------------------------------
# recovery emission: one structured event per recovery pass
# ----------------------------------------------------------------------
class TestRecoveryEmission:
    def _loaded_db(self):
        schema = Schema(
            [
                Attribute("k", IntEncoder(0, 1023)),
                Attribute("v", IntEncoder(0, 1023)),
            ]
        )
        db = Database(wal=True)
        table = db.create_heap_table("t", schema, 8)
        table.bulk_load([(i, i % 7) for i in range(50)])
        return db

    def test_each_recover_pass_emits_exactly_once(self):
        db = self._loaded_db()
        seen = []
        register_recovery_observer(seen.append)
        try:
            report = db.recover()
            db.recover()
        finally:
            unregister_recovery_observer(seen.append)
        assert len(seen) == 2  # one event per pass, idempotent or not
        assert all(isinstance(event, RecoveryEvent) for event in seen)
        assert seen[0].report.healed_pages == report.healed_pages
        assert seen[0].wal_name == report.wal_name
        assert seen[0].describe()

    def test_coordinator_recovery_emits_one_event_per_shard_log(self):
        from repro.shard import ShardedDatabase
        from repro.txn import TransactionCoordinator

        schema = Schema(
            [
                Attribute("a1", IntEncoder(0, 1023)),
                Attribute("a2", IntEncoder(0, 1023)),
            ]
        )
        sdb = ShardedDatabase(
            schema, ("a1", "a2"), "a1", shards=2, page_capacity=8, wal=True
        )
        txn = TransactionCoordinator(sdb)
        txn.atomic_load([(i % 1024, i * 3 % 1024) for i in range(40)])
        seen = []
        register_recovery_observer(seen.append)
        try:
            report = txn.recover()
        finally:
            unregister_recovery_observer(seen.append)
        assert len(seen) == len(report.participant_reports) == 2
        assert sorted(e.wal_name for e in seen) == [
            "shard0.copy0.wal",
            "shard1.copy0.wal",
        ]
