"""RetryPolicy edge cases: zero-attempt policies, backoff cap
saturation, and exact simulated-clock charges when retry loops stack
across layers (resilient reads and the buffer pool's inlined loop).

Every delay in a backoff schedule is charged to the *simulated* clock
(reprolint R001 bans the wall clock), so the numbers here are exact
equalities, not tolerances.
"""

import pytest

from repro.storage import (
    BufferPool,
    NO_RETRY,
    RetryPolicy,
    SimulatedDisk,
    TransientIOError,
    read_page_resilient,
)


class FlakyDisk(SimulatedDisk):
    """Raises a set number of transient errors per page, then delegates.

    Failures raise before any pricing, so the exact clock charge of a
    retried read is ``sum(backoff delays) + cost(successful read)``.
    """

    def __init__(self, failures):
        super().__init__()
        self._remaining = dict(failures)

    def read(self, page_id, **kwargs):
        remaining = self._remaining.get(page_id, 0)
        if remaining:
            self._remaining[page_id] = remaining - 1
            raise TransientIOError(f"flaky read of page {page_id}")
        return super().read(page_id, **kwargs)


def make_flaky(failures, pages=3, capacity=4):
    disk = FlakyDisk(failures)
    for index in range(pages):
        page = disk.allocate(capacity)
        page.add((index,))
    return disk


# ----------------------------------------------------------------------
# schedule shape
# ----------------------------------------------------------------------
class TestSchedule:
    def test_zero_attempt_policy_has_an_empty_schedule(self):
        assert list(RetryPolicy(max_retries=0).delays()) == []
        assert list(NO_RETRY.delays()) == []

    def test_backoff_cap_saturates(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.01, multiplier=3.0, max_delay=0.02
        )
        assert list(policy.delays()) == [0.01, 0.02, 0.02, 0.02, 0.02]

    def test_cap_below_base_clamps_every_delay(self):
        policy = RetryPolicy(
            max_retries=3, base_delay=0.04, multiplier=2.0, max_delay=0.01
        )
        assert list(policy.delays()) == [0.01, 0.01, 0.01]

    def test_multiplier_one_is_a_flat_schedule(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.003, multiplier=1.0, max_delay=1.0
        )
        assert list(policy.delays()) == [0.003] * 4

    def test_zero_delay_schedule_is_legal(self):
        policy = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0)
        assert list(policy.delays()) == [0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.001)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=-0.001)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# zero-attempt behaviour on the read paths
# ----------------------------------------------------------------------
class TestZeroAttempt:
    def test_resilient_read_fails_fast_and_charges_nothing(self):
        disk = make_flaky({0: 1})
        with pytest.raises(TransientIOError):
            read_page_resilient(disk, 0, policy=NO_RETRY)
        assert disk.clock == 0.0
        assert disk.stats.faults.retries == 0
        assert disk.stats.faults.retry_delay == 0.0

    def test_buffer_pool_fails_fast_too(self):
        disk = make_flaky({0: 1})
        pool = BufferPool(disk, 4, retry_policy=NO_RETRY, quarantine_threshold=10)
        with pytest.raises(TransientIOError):
            pool.get(0)
        assert disk.clock == 0.0
        assert pool.retry_attempts == 0
        assert pool.failure_count(0) == 1  # the failure is still recorded


# ----------------------------------------------------------------------
# exact simulated-clock charges
# ----------------------------------------------------------------------
class TestExactCharges:
    POLICY = RetryPolicy(
        max_retries=3, base_delay=0.002, multiplier=2.0, max_delay=0.005
    )  # schedule: 2 ms, 4 ms, 5 ms (capped)

    def test_single_read_charges_delays_plus_one_read(self):
        disk = make_flaky({1: 2})
        page, retries = read_page_resilient(disk, 1, policy=self.POLICY)
        assert page.records == [(1,)]
        assert retries == 2
        expected_backoff = 0.002 + 0.004
        assert disk.stats.faults.retries == 2
        assert disk.stats.faults.retry_delay == expected_backoff
        assert disk.clock == expected_backoff + disk.params.random_cost(1)

    def test_exhausted_schedule_charges_every_delay(self):
        disk = make_flaky({1: 10})
        with pytest.raises(TransientIOError):
            read_page_resilient(disk, 1, policy=self.POLICY)
        expected_backoff = 0.002 + 0.004 + 0.005  # full capped schedule
        assert disk.stats.faults.retries == 3
        assert disk.stats.faults.retry_delay == expected_backoff
        assert disk.clock == expected_backoff  # no read ever succeeded

    def test_nested_retry_loops_accumulate_exactly(self):
        """Resilient reads and the buffer pool's inlined loop stack: the
        clock carries the exact sum of both layers' backoff schedules
        plus the two successful reads."""
        disk = make_flaky({0: 2, 2: 3})
        # layer 1: a bare resilient read of page 0 (two failures)
        read_page_resilient(disk, 0, policy=self.POLICY)
        # layer 2: a buffer-pool lookup of page 2 (three failures)
        pool = BufferPool(disk, 4, retry_policy=self.POLICY, quarantine_threshold=10)
        pool.get(2)
        faults = disk.stats.faults
        assert faults.retries == 5
        # bit-exact: accumulate in the same order the engine charged it
        expected_backoff = 0.0
        expected_clock = 0.0
        for delay in (0.002, 0.004):
            expected_backoff += delay
            expected_clock += delay
        expected_clock += disk.params.random_cost(1)
        for delay in (0.002, 0.004, 0.005):
            expected_backoff += delay
            expected_clock += delay
        expected_clock += disk.params.random_cost(1)
        assert faults.retry_delay == expected_backoff
        assert disk.clock == expected_clock
        assert pool.retry_attempts == 3
        assert pool.disk_fetches == 4  # three failed attempts + the success

    def test_retry_charges_replay_identically(self):
        """Same failures, same policy -> bit-identical clock."""
        clocks = []
        for _ in range(2):
            disk = make_flaky({0: 1, 1: 2})
            read_page_resilient(disk, 0, policy=self.POLICY)
            read_page_resilient(disk, 1, policy=self.POLICY)
            clocks.append(disk.clock)
        assert clocks[0] == clocks[1]
