"""Tests for the bit-schedule curves: encoding, BIGMIN/LITMAX, decomposition."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curves import Curve, tetris_schedule, z_schedule


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_z_schedule_round_robin_equal_bits():
    assert z_schedule([2, 2]) == ((0, 0), (1, 0), (0, 1), (1, 1))


def test_z_schedule_unequal_bits():
    # the shorter dimension drops out of later levels
    assert z_schedule([1, 3]) == ((0, 0), (1, 0), (1, 1), (1, 2))


def test_tetris_schedule_puts_sort_dim_first():
    assert tetris_schedule([2, 2], 1) == ((1, 0), (1, 1), (0, 0), (0, 1))


def test_tetris_schedule_keeps_z_order_of_rest():
    schedule = tetris_schedule([2, 2, 2], 0)
    assert schedule[:2] == ((0, 0), (0, 1))
    assert schedule[2:] == ((1, 0), (2, 0), (1, 1), (2, 1))


def test_tetris_schedule_rejects_bad_dim():
    with pytest.raises(ValueError):
        tetris_schedule([2, 2], 5)


# ----------------------------------------------------------------------
# construction validation
# ----------------------------------------------------------------------
def test_curve_rejects_incomplete_schedule():
    with pytest.raises(ValueError):
        Curve([2, 2], ((0, 0), (1, 0), (0, 1)))


def test_curve_rejects_duplicate_schedule_entry():
    with pytest.raises(ValueError):
        Curve([2, 2], ((0, 0), (0, 0), (0, 1), (1, 1)))


def test_curve_rejects_out_of_range_entry():
    with pytest.raises(ValueError):
        Curve([2, 2], ((0, 0), (1, 0), (0, 1), (1, 5)))


def test_curve_rejects_zero_dims():
    with pytest.raises(ValueError):
        Curve([], ())


# ----------------------------------------------------------------------
# encode / decode
# ----------------------------------------------------------------------
def test_paper_figure_3_2_z_addresses():
    """The 8x8 example of Figure 3-2: Z(x) interleaves with A2's bit above A1's.

    The paper's formula Z(x) = sum x_{j,i} 2^{i*d + j - 1} puts, for each
    level i, attribute 1's bit *below* attribute 2's.  Our z_schedule lists
    dimension 0 first per level, making dimension 0 the more significant —
    the mirror convention.  The example values check the mirrored pairs.
    """
    curve = Curve.z_curve([3, 3])
    # Lebesgue curve basics
    assert curve.encode((0, 0)) == 0
    assert curve.encode((7, 7)) == 63
    # one step in the least significant dimension toggles the lowest bit
    low_dim = curve.schedule[-1][0]
    point = [0, 0]
    point[low_dim] = 1
    assert curve.encode(point) == 1


def test_encode_decode_roundtrip_exhaustive_small():
    curve = Curve.z_curve([2, 3])
    for x in range(4):
        for y in range(8):
            assert curve.decode(curve.encode((x, y))) == (x, y)


def test_encode_rejects_out_of_domain():
    curve = Curve.z_curve([2, 2])
    with pytest.raises(ValueError):
        curve.encode((4, 0))
    with pytest.raises(ValueError):
        curve.encode((0, -1))


def test_encode_rejects_wrong_arity():
    curve = Curve.z_curve([2, 2])
    with pytest.raises(ValueError):
        curve.encode((1,))


def test_decode_rejects_out_of_range_address():
    curve = Curve.z_curve([2, 2])
    with pytest.raises(ValueError):
        curve.decode(16)
    with pytest.raises(ValueError):
        curve.decode(-1)


def test_z_addresses_are_a_bijection():
    curve = Curve.z_curve([3, 2])
    addresses = {
        curve.encode((x, y)) for x in range(8) for y in range(4)
    }
    assert addresses == set(range(32))


def test_monotone_in_each_coordinate():
    curve = Curve.z_curve([3, 3])
    for x in range(7):
        for y in range(8):
            assert curve.encode((x, y)) < curve.encode((x + 1, y))
            assert curve.encode((y, x)) < curve.encode((y, x + 1))


def test_tetris_curve_orders_by_sort_dim_first():
    curve = Curve.tetris_curve([3, 3], 1)
    addresses = sorted(
        (curve.encode((x, y)), (x, y)) for x in range(8) for y in range(8)
    )
    ys = [point[1] for _, point in addresses]
    assert ys == sorted(ys)


@st.composite
def curve_and_points(draw):
    dims = draw(st.integers(min_value=1, max_value=4))
    bits = draw(
        st.lists(st.integers(min_value=1, max_value=8), min_size=dims, max_size=dims)
    )
    kind = draw(st.sampled_from(["z", "tetris"]))
    if kind == "z":
        curve = Curve.z_curve(bits)
    else:
        curve = Curve.tetris_curve(bits, draw(st.integers(0, dims - 1)))
    point = tuple(
        draw(st.integers(0, (1 << b) - 1)) for b in bits
    )
    return curve, point


@given(curve_and_points())
@settings(max_examples=300, deadline=None)
def test_roundtrip_property(curve_point):
    curve, point = curve_point
    assert curve.decode(curve.encode(point)) == point


@given(curve_and_points(), st.data())
@settings(max_examples=200, deadline=None)
def test_monotonicity_property(curve_point, data):
    curve, point = curve_point
    dim = data.draw(st.integers(0, curve.dims - 1))
    if point[dim] >= curve.coord_max[dim]:
        return
    bumped = list(point)
    bumped[dim] += 1
    assert curve.encode(bumped) > curve.encode(point)


# ----------------------------------------------------------------------
# BIGMIN / LITMAX against brute force
# ----------------------------------------------------------------------
def brute_next_in_box(curve, address, lo, hi):
    best = None
    for candidate in range(address, curve.address_max + 1):
        if curve.point_in_box(curve.decode(candidate), lo, hi):
            best = candidate
            break
    return best


def brute_prev_in_box(curve, address, lo, hi):
    for candidate in range(min(address, curve.address_max), -1, -1):
        if curve.point_in_box(curve.decode(candidate), lo, hi):
            return candidate
    return None


def test_next_in_box_exhaustive_2d():
    curve = Curve.z_curve([3, 3])
    lo, hi = (2, 1), (5, 6)
    for address in range(64):
        assert curve.next_in_box(address, lo, hi) == brute_next_in_box(
            curve, address, lo, hi
        )


def test_prev_in_box_exhaustive_2d():
    curve = Curve.z_curve([3, 3])
    lo, hi = (2, 1), (5, 6)
    for address in range(64):
        assert curve.prev_in_box(address, lo, hi) == brute_prev_in_box(
            curve, address, lo, hi
        )


def test_next_in_box_tetris_curve_exhaustive():
    curve = Curve.tetris_curve([3, 3], 1)
    lo, hi = (1, 2), (6, 5)
    for address in range(64):
        assert curve.next_in_box(address, lo, hi) == brute_next_in_box(
            curve, address, lo, hi
        )


def test_next_in_box_degenerate_box():
    curve = Curve.z_curve([3, 3])
    point = (5, 3)
    address = curve.encode(point)
    assert curve.next_in_box(0, point, point) == address
    assert curve.next_in_box(address, point, point) == address
    assert curve.next_in_box(address + 1, point, point) is None


def test_next_in_box_rejects_inverted_box():
    curve = Curve.z_curve([3, 3])
    with pytest.raises(ValueError):
        curve.next_in_box(0, (5, 0), (2, 7))


def test_next_in_box_beyond_address_space():
    curve = Curve.z_curve([2, 2])
    assert curve.next_in_box(16, (0, 0), (3, 3)) is None


@st.composite
def box_queries(draw):
    dims = draw(st.integers(1, 3))
    bits = draw(st.lists(st.integers(1, 4), min_size=dims, max_size=dims))
    kind = draw(st.sampled_from(["z", "tetris"]))
    if kind == "z":
        curve = Curve.z_curve(bits)
    else:
        curve = Curve.tetris_curve(bits, draw(st.integers(0, dims - 1)))
    lo, hi = [], []
    for b in bits:
        a = draw(st.integers(0, (1 << b) - 1))
        c = draw(st.integers(0, (1 << b) - 1))
        lo.append(min(a, c))
        hi.append(max(a, c))
    address = draw(st.integers(0, curve.address_max))
    return curve, address, tuple(lo), tuple(hi)


@given(box_queries())
@settings(max_examples=300, deadline=None)
def test_next_in_box_matches_brute_force(query):
    curve, address, lo, hi = query
    assert curve.next_in_box(address, lo, hi) == brute_next_in_box(
        curve, address, lo, hi
    )


@given(box_queries())
@settings(max_examples=300, deadline=None)
def test_prev_in_box_matches_brute_force(query):
    curve, address, lo, hi = query
    assert curve.prev_in_box(address, lo, hi) == brute_prev_in_box(
        curve, address, lo, hi
    )


# ----------------------------------------------------------------------
# interval -> aligned box decomposition
# ----------------------------------------------------------------------
def test_interval_boxes_cover_exactly():
    curve = Curve.z_curve([3, 3])
    first, last = 13, 47
    covered = set()
    for lo, hi in curve.interval_boxes(first, last):
        for point in itertools.product(
            *[range(l, h + 1) for l, h in zip(lo, hi)]
        ):
            covered.add(curve.encode(point))
    assert covered == set(range(first, last + 1))


def test_interval_boxes_full_space_is_single_box():
    curve = Curve.z_curve([2, 2])
    boxes = list(curve.interval_boxes(0, 15))
    assert boxes == [((0, 0), (3, 3))]


def test_interval_boxes_empty_interval():
    curve = Curve.z_curve([2, 2])
    assert list(curve.interval_boxes(5, 4)) == []


def test_interval_boxes_single_address():
    curve = Curve.z_curve([2, 2])
    boxes = list(curve.interval_boxes(6, 6))
    assert len(boxes) == 1
    lo, hi = boxes[0]
    assert lo == hi == curve.decode(6)


def test_interval_boxes_count_bounded():
    curve = Curve.z_curve([4, 4])
    for first, last in [(1, 254), (3, 200), (77, 78)]:
        boxes = list(curve.interval_boxes(first, last))
        assert len(boxes) <= 2 * curve.total_bits


@given(
    st.integers(0, 255),
    st.integers(0, 255),
)
@settings(max_examples=200, deadline=None)
def test_interval_boxes_cover_property(a, b):
    first, last = min(a, b), max(a, b)
    curve = Curve.z_curve([4, 4])
    covered = []
    for lo, hi in curve.interval_boxes(first, last):
        width = 1
        for l, h in zip(lo, hi):
            width *= h - l + 1
        covered.append(width)
        # each box is an aligned address block entirely inside [first,last]
        assert first <= curve.encode(lo) <= curve.encode(hi) <= last
    assert sum(covered) == last - first + 1
