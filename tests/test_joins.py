"""Pipelined-join tests: operators, telemetry, pushdown plans, sharding.

Complements ``test_operators.py`` (basic join semantics) with the
properties the pipelined-join work relies on:

* early exit — a merge join stops *consuming* an input once the other
  side can no longer produce matches, which is what makes restriction
  pushdown on the probe side observable as pages never read;
* exactly-once :class:`~repro.telemetry.JoinEvent` emission, with
  first-tuple clocks, only on natural drain;
* the full Q3/Q4 pushdown plans are bit-identical to the plain Tetris
  plans and to the reference evaluators, on every kernel backend;
* the dual-cursor prefetcher never changes join output, never loses to
  the solo per-scan prefetchers, and restores the scans on close;
* a co-partitioned sharded join equals the serial join bit-for-bit —
  clean, across failover, and ``allow_partial`` never silently drops
  rows outside its flagged key ranges.
"""

import datetime as dt
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import HashJoin, MergeJoin, MergeSemiJoin
from repro.shard import CoPartitionedJoin, ShardedDatabase, ShardFailedError
from repro.storage import ICDE99_TESTBED
from repro.telemetry import register_join_observer, unregister_join_observer
from repro.tpcd import TPCDConfig, generate, plans, reference_q3, reference_q4
from repro.tpcd.queries import Q3Params, Q4Params

DIMS = ("a1", "a2")


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def make_rows(count: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    return [(rng.randrange(1024), rng.randrange(1024), i) for i in range(count)]


@pytest.fixture(scope="module")
def data():
    return generate(TPCDConfig(scale_factor=0.1, correlated_dates=True))


#: a mid-domain date band (see bench_join.py): qualifying orderkeys are
#: then a band in the middle of the key domain, so pushdown page skips
#: are not aliased by the merge join's own early exit
Q3_BAND_PARAMS = Q3Params(
    orderdate_from=dt.date(1995, 1, 1),
    orderdate_before=dt.date(1995, 7, 1),
    shipdate_after=dt.date(1993, 6, 30),
)


# ----------------------------------------------------------------------
# merge-join consumption properties
# ----------------------------------------------------------------------
class TestEarlyExit:
    def test_merge_join_stops_reading_right_after_left_exhausts(self):
        left = [(1,), (2,)]
        right_iter = iter([(1,), (2,), (3,), (4,), (5,)])
        out = list(
            MergeJoin(
                left, right_iter, left_key=lambda r: r[0], right_key=lambda r: r[0]
            )
        )
        assert out == [(1, 1), (2, 2)]
        # (3,) was pulled to discover left < right; (4,) and (5,) never were
        assert list(right_iter) == [(4,), (5,)]

    def test_semi_join_stops_reading_left_after_right_exhausts(self):
        left_iter = iter([(1,), (5,), (7,), (9,)])
        right = [(1,), (4,)]
        out = list(
            MergeSemiJoin(
                left_iter, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
            )
        )
        assert out == [(1,)]
        # right exhausted while advancing past (5,); (7,) and (9,) unread
        assert list(left_iter) == [(7,), (9,)]

    @given(
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 99)), max_size=50),
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 99)), max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_semi_join_matches_set_reference(self, left_raw, right_raw):
        left = sorted(left_raw)
        right = sorted(right_raw)
        right_keys = {r[0] for r in right}
        expected = [r for r in left if r[0] in right_keys]
        out = list(
            MergeSemiJoin(
                left, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
            )
        )
        assert out == expected

    @given(
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 99)), max_size=50),
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 99)), max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_hash_join_matches_nested_loop(self, build_raw, probe_raw):
        expected = sorted(
            b + p for b in build_raw for p in probe_raw if b[0] == p[0]
        )
        out = sorted(
            HashJoin(
                build_raw,
                probe_raw,
                build_key=lambda r: r[0],
                probe_key=lambda r: r[0],
            )
        )
        assert out == expected


# ----------------------------------------------------------------------
# JoinEvent telemetry: exactly once, only on natural drain
# ----------------------------------------------------------------------
class TestJoinEvents:
    def collect(self):
        events = []
        register_join_observer(events.append)
        return events

    def test_full_drain_emits_exactly_one_event(self):
        events = self.collect()
        try:
            join = MergeJoin(
                [(1,), (2,)],
                [(2,), (3,)],
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
                shard=7,
            )
            assert list(join) == [(2, 2)]
        finally:
            unregister_join_observer(events.append)
        assert len(events) == 1
        event = events[0]
        assert event.operator == "merge-join"
        assert event.rows == 1
        assert event.shard == 7
        assert join.last_event is event

    def test_abandoned_iteration_emits_nothing(self):
        events = self.collect()
        try:
            join = MergeJoin(
                [(1,), (2,), (3,)],
                [(1,), (2,), (3,)],
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
            )
            iterator = iter(join)
            next(iterator)
            iterator.close()
        finally:
            unregister_join_observer(events.append)
        assert events == []
        assert join.last_event is None

    def test_event_clocks_measure_first_tuple(self):
        from repro.storage import SimulatedDisk

        disk = SimulatedDisk()

        def left():
            disk.advance_clock(2.0)
            yield (1,)
            disk.advance_clock(3.0)
            yield (2,)

        events = self.collect()
        try:
            join = MergeSemiJoin(
                left(),
                [(1,), (2,)],
                left_key=lambda r: r[0],
                right_key=lambda r: r[0],
                disk=disk,
            )
            assert list(join) == [(1,), (2,)]
        finally:
            unregister_join_observer(events.append)
        (event,) = events
        assert event.first_tuple_clock - event.start_clock == pytest.approx(2.0)
        assert event.end_clock - event.start_clock == pytest.approx(5.0)
        assert event.time_to_first == pytest.approx(2.0)


# ----------------------------------------------------------------------
# full Q3/Q4 plans: pushdown bit-identity, both backends
# ----------------------------------------------------------------------
class TestPushdownPlans:
    def run_q3(self, data, params):
        db = Database(ICDE99_TESTBED, buffer_pages=256)
        customer_ub = plans.build_customer_ub(db, data)
        order_ub = plans.build_order_ub(db, data)
        lineitem_ub = plans.build_lineitem_ub_sort(db, data)
        probe, _ = plans.q3_lineitem_access("tetris", db, lineitem_ub, params)
        tetris_rows = list(
            plans.q3_full_plan(
                db, customer_ub, order_ub, probe, params, use_tetris=True
            )
        )
        pushed = plans.q3_pushdown_plan(
            db, customer_ub, order_ub, lineitem_ub, params
        )
        pushdown_rows = list(pushed.plan)
        return tetris_rows, pushdown_rows, pushed

    def run_q4(self, data, params):
        db = Database(ICDE99_TESTBED, buffer_pages=256)
        order_ub = plans.build_order_ub(db, data)
        lineitem_ub = plans.build_lineitem_ub_q4(db, data)
        pipelined = plans.q4_pipelined_plan(db, order_ub, lineitem_ub, params)
        tetris_rows = list(pipelined.plan)
        pushed = plans.q4_pushdown_plan(db, order_ub, lineitem_ub, params)
        pushdown_rows = list(pushed.plan)
        return tetris_rows, pushdown_rows, pushed

    def test_q3_pushdown_bit_identical_and_skips_pages(self, data):
        params = Q3_BAND_PARAMS
        tetris_rows, pushdown_rows, pushed = self.run_q3(data, params)
        reference = reference_q3(data, params)
        assert [r[3] for r in tetris_rows] == [r[3] for r in reference]
        assert pushdown_rows == tetris_rows
        assert pushed.probe.stats.pages_skipped_by_pushdown > 0
        assert pushed.build_rows > 0
        assert len(pushed.cover.intervals) <= pushed.cover.budget

    def test_q4_pushdown_bit_identical_and_skips_pages(self, data):
        params = Q4Params()
        tetris_rows, pushdown_rows, pushed = self.run_q4(data, params)
        assert tetris_rows == reference_q4(data, params)
        assert pushdown_rows == tetris_rows
        assert pushed.probe.stats.pages_skipped_by_pushdown > 0

    def test_backends_bit_identical(self, data):
        results = {}
        for backend in kernels.available_backends():
            with kernels.use_backend(backend):
                q3_tetris, q3_pushdown, _ = self.run_q3(data, Q3_BAND_PARAMS)
                q4_tetris, q4_pushdown, _ = self.run_q4(data, Q4Params())
                results[backend] = (q3_tetris, q3_pushdown, q4_tetris, q4_pushdown)
        reference = next(iter(results.values()))
        for backend, got in results.items():
            assert got == reference, f"backend {backend} diverged"

    def test_empty_build_side_yields_empty_join(self, data):
        # a zero-width date window qualifies nothing; the pushdown cover
        # is empty and the probe sweep reads no regions
        params = Q4Params(
            orderdate_from=dt.date(1997, 1, 2),
            orderdate_until=dt.date(1997, 1, 2),
        )
        tetris_rows, pushdown_rows, pushed = self.run_q4(data, params)
        assert tetris_rows == pushdown_rows == []
        assert pushed.build_rows == 0
        assert pushed.probe.stats.regions_read == 0


# ----------------------------------------------------------------------
# dual-cursor prefetching
# ----------------------------------------------------------------------
class TestDualCursorPrefetch:
    def run_pipelined(self, data, *, prefetch):
        db = Database(ICDE99_TESTBED, buffer_pages=256, devices=4, prefetch_depth=8)
        order_ub = plans.build_order_ub(db, data)
        lineitem_ub = plans.build_lineitem_ub_q4(db, data)
        db.reset_measurement()
        before = db.disk.snapshot()
        pipelined = plans.q4_pipelined_plan(
            db, order_ub, lineitem_ub, Q4Params(), prefetch=prefetch
        )
        rows = list(pipelined.plan)
        elapsed = (db.disk.snapshot() - before).time
        return rows, elapsed, pipelined

    def test_output_identical_and_not_slower(self, data):
        solo_rows, solo_elapsed, _ = self.run_pipelined(data, prefetch=False)
        dual_rows, dual_elapsed, pipelined = self.run_pipelined(
            data, prefetch=True
        )
        assert dual_rows == solo_rows == reference_q4(data, Q4Params())
        assert dual_elapsed <= solo_elapsed * (1 + 1e-9)

    def test_scans_restored_after_drain(self, data):
        _, _, pipelined = self.run_pipelined(data, prefetch=True)
        assert pipelined.prefetch is not None
        assert pipelined.left.scan.external_prefetch is False
        assert pipelined.right.scan.external_prefetch is False

    def test_no_prefetch_database_degrades_to_none(self, data):
        db = Database(ICDE99_TESTBED, buffer_pages=256)
        order_ub = plans.build_order_ub(db, data)
        lineitem_ub = plans.build_lineitem_ub_q4(db, data)
        pipelined = plans.q4_pipelined_plan(
            db, order_ub, lineitem_ub, Q4Params(), prefetch=True
        )
        assert pipelined.prefetch is None
        assert list(pipelined.plan) == reference_q4(data, Q4Params())


# ----------------------------------------------------------------------
# co-partitioned sharded joins
# ----------------------------------------------------------------------
class TestCoPartitionedJoin:
    LEFT_ROWS = make_rows(420, seed=5)
    RIGHT_ROWS = make_rows(700, seed=6)

    def serial_stream(self, rows):
        db = Database(buffer_pages=64)
        table = db.create_ub_table("serial", make_schema(), DIMS, 32)
        table.bulk_load(rows)
        return [row for _, row in table.tetris_scan(None, "a1")]

    def oracle(self, kind):
        left = self.serial_stream(self.LEFT_ROWS)
        right = self.serial_stream(self.RIGHT_ROWS)
        join_cls = MergeJoin if kind == "inner" else MergeSemiJoin
        return list(
            join_cls(
                left, right, left_key=lambda r: r[0], right_key=lambda r: r[0]
            )
        )

    def make_pair(self, *, shards, copies=1):
        left = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=shards, copies=copies
        )
        left.load(self.LEFT_ROWS)
        right = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=shards, copies=copies
        )
        right.load(self.RIGHT_ROWS)
        return left, right

    @pytest.mark.parametrize("kind", ["inner", "semi"])
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_bit_identical_to_serial_join(self, kind, shards):
        left, right = self.make_pair(shards=shards)
        result = CoPartitionedJoin(left, right, kind=kind).run()
        assert result.rows == self.oracle(kind)
        assert not result.degraded
        assert not result.partial
        assert sum(result.per_shard_rows) == len(result.rows)

    def test_one_event_per_surviving_leg_with_clocks(self):
        left, right = self.make_pair(shards=4)
        result = CoPartitionedJoin(left, right, kind="inner").run()
        assert len(result.join_events) == 4  # one per surviving leg
        for event in result.join_events:
            assert event.operator == "merge-join"
            assert event.shard is not None
            if event.rows:
                assert event.time_to_first is not None
                assert event.time_to_first >= 0.0

    def test_mismatched_slabs_rejected(self):
        left, _ = self.make_pair(shards=2)
        _, right = self.make_pair(shards=3)
        with pytest.raises(ValueError):
            CoPartitionedJoin(left, right)

    def test_failover_mid_join_is_bit_identical(self):
        left, right = self.make_pair(shards=3, copies=2)
        right.kill_copy(1, 0, after_rows=25)
        result = CoPartitionedJoin(left, right, kind="inner").run()
        assert result.rows == self.oracle("inner")
        assert result.degraded
        assert not result.partial

    def test_last_copy_death_raises_typed_error(self):
        left, right = self.make_pair(shards=3, copies=1)
        right.kill_copy(1, 0, after_rows=10)
        with pytest.raises(ShardFailedError):
            CoPartitionedJoin(left, right, kind="inner").run()

    def test_allow_partial_never_silently_drops(self):
        left, right = self.make_pair(shards=3, copies=1)
        right.kill_copy(1, 0, after_rows=10)
        result = CoPartitionedJoin(left, right, kind="inner").run(
            allow_partial=True
        )
        assert result.partial
        assert result.failed_ranges
        encoder = make_schema().attribute("a1").encoder
        lost = {
            row[:3]
            for row in self.oracle("inner")
            if any(
                lo <= encoder.encode(row[0]) <= hi
                for lo, hi in result.failed_ranges
            )
        }
        surviving = [
            row
            for row in self.oracle("inner")
            if row[:3] not in lost
        ]
        assert result.rows == surviving
