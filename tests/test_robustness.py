"""Robustness and failure-injection tests: edges, misuse, degenerate shapes."""

import pytest

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.core.query_space import PredicateSpace
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import ExternalMergeSort, TetrisOperator
from repro.storage import BufferPool, DiskParameters, SimulatedDisk


class TestDegenerateShapes:
    def test_one_dimensional_space(self):
        """d = 1: the Tetris order degenerates to the plain key order and
        the sweep behaves like a clustered index scan."""
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 64), ZSpace([5]), page_capacity=3)
        for value in [17, 3, 29, 3, 8, 31, 0]:
            tree.insert((value,), value)
        out = [p[0] for p, _ in tetris_sorted(tree, QueryBox((2,), (30,)), 0)]
        assert out == [3, 3, 8, 17, 29]

    def test_one_bit_dimensions(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 64), ZSpace([1, 1]), page_capacity=2)
        for point in [(0, 0), (0, 1), (1, 0), (1, 1), (1, 1)]:
            tree.insert(point, None)
        tree.check_invariants()
        assert tree.range_count(QueryBox((0, 0), (1, 1))) == 5
        assert tree.range_count(QueryBox((1, 1), (1, 1))) == 2

    def test_page_capacity_two(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 64), ZSpace([4, 4]), page_capacity=2)
        import random

        rng = random.Random(0)
        for index in range(120):
            tree.insert((rng.randrange(16), rng.randrange(16)), index)
        tree.check_invariants()
        out = list(tetris_sorted(tree, QueryBox((0, 0), (15, 15)), 0))
        assert len(out) == 120

    def test_single_tuple_table(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 16), ZSpace([3, 3]), page_capacity=4)
        tree.insert((5, 2), "only")
        out = list(tetris_sorted(tree, QueryBox((0, 0), (7, 7)), 1))
        assert out == [((5, 2), "only")]

    def test_box_outside_data(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 16), ZSpace([4, 4]), page_capacity=4)
        for x in range(8):
            tree.insert((x, x), x)
        # a box in an empty corner: regions visited but nothing matches
        out = list(tetris_sorted(tree, QueryBox((12, 0), (15, 3)), 0))
        assert out == []

    def test_degenerate_line_box(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 64), ZSpace([4, 4]), page_capacity=3)
        import random

        rng = random.Random(2)
        points = [(rng.randrange(16), rng.randrange(16)) for _ in range(100)]
        for i, p in enumerate(points):
            tree.insert(p, i)
        line = QueryBox((7, 0), (7, 15))  # a single column
        out = [p for p, _ in tetris_sorted(tree, line, 1)]
        assert out == sorted((p for p in points if p[0] == 7), key=lambda p: p[1])


class TestMisuse:
    def test_freed_page_access_raises(self):
        disk = SimulatedDisk()
        page = disk.allocate(4)
        disk.free(page.page_id)
        with pytest.raises(KeyError):
            disk.read(page.page_id)

    def test_write_unallocated_page_raises(self):
        from repro.storage import Page

        disk = SimulatedDisk()
        with pytest.raises(KeyError):
            disk.write(Page(99, 4))

    def test_encoder_violation_surfaces_at_insert(self):
        schema = Schema([Attribute("a", IntEncoder(0, 15)), Attribute("b", IntEncoder(0, 15))])
        db = Database()
        table = db.create_ub_table("t", schema, dims=("a", "b"), page_capacity=4)
        with pytest.raises(ValueError):
            table.insert((99, 0))

    def test_restriction_outside_domain_raises(self):
        schema = Schema([Attribute("a", IntEncoder(0, 15)), Attribute("b", IntEncoder(0, 15))])
        db = Database()
        table = db.create_ub_table("t", schema, dims=("a", "b"), page_capacity=4)
        with pytest.raises(ValueError):
            table.build_query_box({"a": (0, 999)})

    def test_external_sort_key_errors_propagate(self):
        disk = SimulatedDisk()
        sort = ExternalMergeSort(
            [(1,), (2,)], key=lambda r: r[5], disk=disk, memory_pages=1, page_capacity=2
        )
        with pytest.raises(IndexError):
            list(sort)

    def test_tetris_predicate_space_exceptions_propagate(self):
        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 16), ZSpace([3, 3]), page_capacity=4)
        tree.insert((1, 1), None)

        def bomb(point):
            raise RuntimeError("predicate failure")

        from repro.core.query_space import IntersectionSpace

        space = IntersectionSpace(
            [QueryBox.full(tree.space.coord_max), PredicateSpace(2, bomb)]
        )
        with pytest.raises(RuntimeError):
            list(tetris_sorted(tree, space, 0))


class TestBufferPressure:
    def test_tiny_buffer_pool_still_correct(self):
        """With a one-frame pool every access is a miss; results and the
        page-once property must survive."""
        import random

        disk = SimulatedDisk()
        tree = UBTree(BufferPool(disk, 1), ZSpace([4, 4]), page_capacity=3)
        rng = random.Random(4)
        points = [(rng.randrange(16), rng.randrange(16)) for _ in range(150)]
        for i, p in enumerate(points):
            tree.insert(p, i)
        tree.tree.buffer.drop_all()
        box = QueryBox((2, 2), (13, 13))
        scan = tetris_sorted(tree, box, 1)
        out = list(scan)
        assert len(out) == sum(1 for p in points if box.contains_point(p))
        assert len(scan.page_access_order) == len(set(scan.page_access_order))

    def test_interleaved_scans_share_the_disk(self):
        """Two concurrent consumers on different tables interleave reads;
        both streams stay correct and the clock only moves forward."""
        schema = Schema(
            [Attribute("a", IntEncoder(0, 63)), Attribute("b", IntEncoder(0, 63))]
        )
        db = Database(DiskParameters())
        import random

        rng = random.Random(5)
        rows = [(rng.randrange(64), rng.randrange(64)) for _ in range(400)]
        t1 = db.create_ub_table("t1", schema, dims=("a", "b"), page_capacity=8)
        t1.load(rows)
        t2 = db.create_ub_table("t2", schema, dims=("a", "b"), page_capacity=8)
        t2.load(rows)
        db.reset_measurement()
        s1 = iter(TetrisOperator(t1, None, "a"))
        s2 = iter(TetrisOperator(t2, None, "b"))
        out1, out2 = [], []
        clock = db.disk.clock
        for _ in range(400):
            out1.append(next(s1))
            out2.append(next(s2))
            assert db.disk.clock >= clock
            clock = db.disk.clock
        assert [r[0] for r in out1] == sorted(r[0] for r in out1)
        assert [r[1] for r in out2] == sorted(r[1] for r in out2)


class TestOperatorEdges:
    def test_external_sort_empty_input(self):
        disk = SimulatedDisk()
        sort = ExternalMergeSort(
            [], key=lambda r: r[0], disk=disk, memory_pages=1, page_capacity=4
        )
        assert list(sort) == []
        assert disk.stats.pages_written == 0

    def test_external_sort_single_row(self):
        disk = SimulatedDisk()
        sort = ExternalMergeSort(
            [(7,)], key=lambda r: r[0], disk=disk, memory_pages=1, page_capacity=4
        )
        assert list(sort) == [(7,)]

    def test_sort_reiterable(self):
        """A fresh iteration of the same operator re-runs the sort."""
        disk = SimulatedDisk()
        rows = [(3,), (1,), (2,)]
        sort = ExternalMergeSort(
            list(rows), key=lambda r: r[0], disk=disk, memory_pages=4, page_capacity=4
        )
        assert list(sort) == [(1,), (2,), (3,)]
        assert list(sort) == [(1,), (2,), (3,)]
