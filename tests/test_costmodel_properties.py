"""Property-based tests of the Section 4 cost model."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    CostParameters,
    c_fts,
    c_fts_sort,
    c_iot,
    c_scan,
    c_sort,
    c_tetris,
    l_splits,
    n_intervals,
    n_regions_dim,
    p_incomplete,
    tetris_cache_pages,
    tetris_regions,
)

pages_strategy = st.integers(16, 2_000_000)
dims_strategy = st.integers(1, 5)
fraction = st.floats(0.0, 1.0, allow_nan=False)


@given(pages_strategy, dims_strategy)
@settings(max_examples=200, deadline=None)
def test_split_counts_sum_to_total(pages, dims):
    total = sum(l_splits(dims, pages, j) for j in range(1, dims + 1))
    assert total == int(math.log2(pages))


@given(pages_strategy, dims_strategy)
@settings(max_examples=200, deadline=None)
def test_incomplete_split_probability_bounds(pages, dims):
    probabilities = [p_incomplete(dims, pages, j) for j in range(1, dims + 1)]
    assert sum(1 for p in probabilities if p > 0) <= 1
    for p in probabilities:
        assert 0.0 <= p < 1.0


@given(fraction, fraction, st.integers(0, 12))
@settings(max_examples=300, deadline=None)
def test_n_intervals_bounds(a, b, splits):
    y, z = min(a, b), max(a, b)
    value = n_intervals(y, z, splits)
    assert 0 <= value <= (1 << splits)
    # full range covers every cell
    assert n_intervals(0.0, 1.0, splits) == (1 << splits)


@given(pages_strategy, fraction, fraction)
@settings(max_examples=200, deadline=None)
def test_region_count_monotone_in_range(pages, a, b):
    y, z = min(a, b), max(a, b)
    narrow = n_regions_dim(2, pages, y, z, 1)
    wide = n_regions_dim(2, pages, 0.0, 1.0, 1)
    assert 0 <= narrow <= wide + 1e-9


@given(pages_strategy, fraction)
@settings(max_examples=200, deadline=None)
def test_tetris_cost_scales_with_selectivity(pages, selectivity):
    restricted = c_tetris(pages, [(0.0, selectivity), (0.0, 1.0)])
    unrestricted = c_tetris(pages, [(0.0, 1.0), (0.0, 1.0)])
    assert restricted <= unrestricted + 1e-9


@given(pages_strategy)
@settings(max_examples=100, deadline=None)
def test_cache_never_exceeds_regions(pages):
    ranges = [(0.0, 0.5), (0.0, 1.0)]
    cache = tetris_cache_pages(pages, ranges, 1)
    total = tetris_regions(pages, ranges)
    assert cache <= total + 1e-9


@given(st.integers(1, 100_000), st.integers(1, 64))
@settings(max_examples=200, deadline=None)
def test_scan_cheaper_than_random_per_page(k, prefetch):
    params = CostParameters(prefetch=prefetch)
    assume(k >= prefetch)
    sequential = c_scan(k, params)
    random_cost = k * (params.t_pi + params.t_tau)
    assert sequential <= random_cost + 1e-9


@given(pages_strategy, fraction)
@settings(max_examples=150, deadline=None)
def test_fts_sort_dominates_fts(pages, selectivity):
    assert c_fts_sort(pages, [selectivity, 1.0]) >= c_fts(pages) - 1e-9


@given(pages_strategy, fraction, fraction)
@settings(max_examples=150, deadline=None)
def test_sort_cost_monotone_in_selectivity(pages, a, b):
    low, high = min(a, b), max(a, b)
    assert c_sort(pages, [low, 1.0]) <= c_sort(pages, [high, 1.0]) + 1e-9


@given(pages_strategy, fraction)
@settings(max_examples=150, deadline=None)
def test_iot_linear_in_selectivity(pages, selectivity):
    full = c_iot(pages, 1.0)
    part = c_iot(pages, selectivity)
    assert part == pytest.approx(full * selectivity, rel=1e-9, abs=1e-9)


@given(pages_strategy, dims_strategy, st.data())
@settings(max_examples=100, deadline=None)
def test_tetris_regions_bounded_by_grid(pages, dims, data):
    """The region-count product never exceeds twice the split grid size
    (the interpolation adds at most the finer grid's increment)."""
    ranges = [
        (0.0, data.draw(st.floats(0.0, 1.0, allow_nan=False))) for _ in range(dims)
    ]
    ranges = [(lo, max(lo, hi)) for lo, hi in ranges]
    value = tetris_regions(pages, ranges)
    grid = 1 << int(math.log2(pages))
    assert value <= 2 * grid + 1
