"""Tests for atomic cross-shard transactions (``repro.txn``).

The load-bearing claim: a multi-shard write driven through the
:class:`~repro.txn.TransactionCoordinator` commits on every shard or on
none — in-process failures abort everywhere, crashes resolve through the
decision log (commit exactly when the verdict is durable, presumed
abort otherwise), and recovery is idempotent.  The exhaustive version of
the crash claim lives in ``tools.crashgrid``; these tests pin the
protocol's individual gears.
"""

import random

import pytest

from repro import invariants
from repro.invariants import InvariantViolation
from repro.relational import Attribute, IntEncoder, Schema
from repro.shard import ShardedDatabase
from repro.storage import SimulatedCrashError
from repro.storage.errors import StorageError
from repro.txn import (
    CoordinatorStateError,
    DecisionLog,
    TransactionCoordinator,
    TxnAbortedError,
    TxnEvent,
    register_txn_observer,
    unregister_txn_observer,
)

DIMS = ("a1", "a2")
FULL = {"a1": (0, 1023)}


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def make_rows(count, seed=99):
    rng = random.Random(seed)
    return [(rng.randrange(1024), rng.randrange(1024), i) for i in range(count)]


def make_world(*, shards=2, copies=1, wal=True):
    sdb = ShardedDatabase(
        make_schema(),
        DIMS,
        "a1",
        shards=shards,
        copies=copies,
        page_capacity=8,
        wal=wal,
    )
    return sdb, TransactionCoordinator(sdb)


def fingerprint(sdb):
    return tuple(sdb.sorted_scan(FULL, "a2").rows)


# ----------------------------------------------------------------------
# the decision log
# ----------------------------------------------------------------------
class TestDecisionLog:
    def test_prepare_decision_ack_lifecycle(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0", "s1"))
        assert log.prepared_gids() == ("g1",)
        assert log.participants_for("g1") == ("s0", "s1")
        assert log.decision_for("g1") is None
        log.log_decision("g1", "commit")
        assert log.decision_for("g1") == "commit"
        assert log.unacked_decisions() == (("g1", "commit"),)
        log.log_ack("g1")
        assert log.acked("g1")
        assert log.unacked_decisions() == ()

    def test_duplicate_prepare_rejected(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        with pytest.raises(CoordinatorStateError):
            log.log_prepare("g1", ("s0",))

    def test_empty_roster_rejected(self):
        log = DecisionLog()
        with pytest.raises(CoordinatorStateError):
            log.log_prepare("g1", ())

    def test_decision_without_prepare_rejected(self):
        log = DecisionLog()
        with pytest.raises(CoordinatorStateError):
            log.log_decision("ghost", "commit")

    def test_illegal_verdict_rejected(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        with pytest.raises(CoordinatorStateError):
            log.log_decision("g1", "maybe")

    def test_contradictory_verdict_rejected(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        log.log_decision("g1", "commit")
        with pytest.raises(CoordinatorStateError):
            log.log_decision("g1", "abort")

    def test_identical_verdict_is_idempotent(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        log.log_decision("g1", "abort")
        before = len(log.records)
        log.log_decision("g1", "abort")
        assert len(log.records) == before

    def test_ack_requires_decision(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        with pytest.raises(CoordinatorStateError):
            log.log_ack("g1")

    def test_ack_is_idempotent(self):
        log = DecisionLog()
        log.log_prepare("g1", ("s0",))
        log.log_decision("g1", "commit")
        log.log_ack("g1")
        before = len(log.records)
        log.log_ack("g1")
        assert len(log.records) == before

    def test_crashed_prepare_leaves_no_mapping(self):
        log = DecisionLog()
        log.crash_after_appends(1)
        with pytest.raises(SimulatedCrashError):
            log.log_prepare("g1", ("s0",))
        assert log.prepared_gids() == ()
        # the gid is reusable: the crashed append never happened
        log.log_prepare("g1", ("s0",))
        assert log.prepared_gids() == ("g1",)


# ----------------------------------------------------------------------
# commit path
# ----------------------------------------------------------------------
class TestCommit:
    def test_atomic_load_commits_everywhere(self):
        rows = make_rows(120)
        sdb, txn = make_world(shards=3)
        result = txn.atomic_load(rows)
        assert result.verdict == "commit"
        assert result.rows == 120
        assert result.participants == (
            "shard0.copy0",
            "shard1.copy0",
            "shard2.copy0",
        )
        plain = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=3, page_capacity=8
        )
        plain.load(rows)
        assert fingerprint(sdb) == fingerprint(plain)

    def test_load_routes_through_attached_coordinator(self):
        rows = make_rows(60)
        sdb, txn = make_world()
        assert sdb.load(rows) == 60
        assert txn.log.prepared_gids() == ("load#0",)
        assert txn.log.decision_for("load#0") == "commit"
        assert txn.log.acked("load#0")

    def test_insert_batch_routes_through_attached_coordinator(self):
        sdb, txn = make_world()
        sdb.load(make_rows(40))
        total = sdb.insert_batch(make_rows(12, seed=5))
        assert total == 52
        assert txn.log.decision_for("insert#1") == "commit"

    def test_insert_batch_without_coordinator_still_works(self):
        sdb = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=2, page_capacity=8, wal=True
        )
        sdb.load(make_rows(40))
        assert sdb.insert_batch(make_rows(12, seed=5)) == 52

    def test_replicated_copies_commit_in_lockstep(self):
        rows = make_rows(80)
        sdb, txn = make_world(shards=2, copies=2)
        txn.atomic_load(rows)
        txn.atomic_insert(make_rows(10, seed=3))
        assert sdb.refresh_row_counts() == 90

    def test_each_gid_is_unique(self):
        sdb, txn = make_world()
        r1 = txn.atomic_load(make_rows(30))
        r2 = txn.atomic_insert(make_rows(5, seed=1))
        r3 = txn.atomic_insert(make_rows(5, seed=2))
        assert len({r1.gid, r2.gid, r3.gid}) == 3


# ----------------------------------------------------------------------
# attachment rules
# ----------------------------------------------------------------------
class TestAttachment:
    def test_requires_wal_on_every_copy(self):
        sdb = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=2, page_capacity=8, wal=False
        )
        with pytest.raises(RuntimeError, match="wal=True"):
            TransactionCoordinator(sdb)

    def test_double_attach_refused(self):
        sdb, _txn = make_world()
        with pytest.raises(RuntimeError, match="already attached"):
            TransactionCoordinator(sdb)


# ----------------------------------------------------------------------
# abort path: in-process failures roll back everywhere
# ----------------------------------------------------------------------
class TestAbort:
    def _poisoned_world(self, monkeypatch, exc):
        """A world whose *last* participant fails during the work phase."""
        sdb, txn = make_world(shards=3)
        sdb.load(make_rows(60))
        baseline = fingerprint(sdb)
        last = sdb.participant_ids()[-1]
        original = sdb.insert_participant

        def poisoned(pid, rows):
            if pid == last:
                raise exc
            return original(pid, rows)

        monkeypatch.setattr(sdb, "insert_participant", poisoned)
        return sdb, txn, baseline

    def test_storage_error_aborts_all_shards(self, monkeypatch):
        sdb, txn, baseline = self._poisoned_world(
            monkeypatch, StorageError("device on fire")
        )
        with pytest.raises(TxnAbortedError) as info:
            txn.atomic_insert(make_rows(12, seed=5))
        assert "device on fire" in str(info.value)
        assert fingerprint(sdb) == baseline
        assert sdb.refresh_row_counts() == 60

    def test_non_storage_error_keeps_its_type(self, monkeypatch):
        sdb, txn, baseline = self._poisoned_world(
            monkeypatch, ValueError("bad row shape")
        )
        with pytest.raises(ValueError, match="bad row shape"):
            txn.atomic_insert(make_rows(12, seed=5))
        assert fingerprint(sdb) == baseline

    def test_abort_leaves_no_commit_decision(self, monkeypatch):
        sdb, txn, _ = self._poisoned_world(monkeypatch, StorageError("x"))
        with pytest.raises(TxnAbortedError):
            txn.atomic_insert(make_rows(12, seed=5))
        assert txn.log.decision_for("insert#1") != "commit"

    def test_world_usable_after_abort(self, monkeypatch):
        sdb, txn, _ = self._poisoned_world(monkeypatch, StorageError("x"))
        with pytest.raises(TxnAbortedError):
            txn.atomic_insert(make_rows(12, seed=5))
        monkeypatch.undo()
        result = txn.atomic_insert(make_rows(12, seed=5))
        assert result.verdict == "commit"
        assert sdb.refresh_row_counts() == 72

    def test_tree_meta_restored_after_abort(self, monkeypatch):
        """Aborted batches restore in-memory descriptors, not just pages."""
        sdb, txn, _ = self._poisoned_world(monkeypatch, StorageError("x"))
        counts = [
            len(copy.table) for s in sdb.shards for copy in s.copies
        ]
        with pytest.raises(TxnAbortedError):
            txn.atomic_insert(make_rows(40, seed=5))
        after = [
            len(copy.table) for s in sdb.shards for copy in s.copies
        ]
        assert after == counts


# ----------------------------------------------------------------------
# crash + recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_crash_before_decision_presumes_abort(self):
        sdb, txn = make_world()
        sdb.load(make_rows(60))
        baseline = fingerprint(sdb)
        # decision-log append #1 is the prepare roster: the verdict
        # never lands, so recovery must presume abort
        txn.crash_after("txn-log", 1)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_insert(make_rows(12, seed=5))
        report = txn.recover()
        assert report.resolved_commits == 0
        assert fingerprint(sdb) == baseline
        assert txn.log.decision_for("insert#1") is None

    def test_crash_after_decision_commits_forward(self):
        sdb, txn = make_world()
        sdb.load(make_rows(60))
        oracle_sdb, oracle_txn = make_world()
        oracle_sdb.load(make_rows(60))
        oracle_txn.atomic_insert(make_rows(12, seed=5))
        oracle = fingerprint(oracle_sdb)
        # append #3 is the ack: the commit verdict is already durable
        txn.crash_after("txn-log", 3)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_insert(make_rows(12, seed=5))
        report = txn.recover()
        assert txn.log.decision_for("insert#1") == "commit"
        assert txn.log.acked("insert#1")
        # every participant applied before the ack force crashed, so
        # recovery's only job was closing the decision back out
        assert "insert#1" in report.reacked
        assert fingerprint(sdb) == oracle

    def test_crashed_coordinator_refuses_new_transactions(self):
        sdb, txn = make_world()
        txn.crash_after("txn-log", 1)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_load(make_rows(60))
        with pytest.raises(CoordinatorStateError, match="recover"):
            txn.atomic_insert(make_rows(5))
        txn.recover()
        assert txn.atomic_load(make_rows(60)).verdict == "commit"

    def test_shard_wal_crash_mid_work_rolls_back(self):
        sdb, txn = make_world()
        sdb.load(make_rows(60))
        baseline = fingerprint(sdb)
        txn.crash_after("shard0.copy0.wal", 2)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_insert(make_rows(12, seed=5))
        txn.recover()
        assert fingerprint(sdb) == baseline

    def test_recovery_is_idempotent(self):
        sdb, txn = make_world()
        sdb.load(make_rows(60))
        txn.crash_after("shard1.copy0.wal", 3)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_insert(make_rows(12, seed=5))
        txn.recover()
        fp = fingerprint(sdb)
        again = txn.recover()
        assert again.resolved_commits == 0
        assert again.resolved_aborts == 0
        assert again.reacked == ()
        assert fingerprint(sdb) == fp

    def test_recover_without_coordinator_presumes_abort(self):
        """Standalone shard recovery (no decision log) aborts in-doubt."""
        sdb = ShardedDatabase(
            make_schema(), DIMS, "a1", shards=2, page_capacity=8, wal=True
        )
        sdb.load(make_rows(60))
        baseline = fingerprint(sdb)
        txn = TransactionCoordinator(sdb)
        txn.crash_after("shard0.copy0.wal", 2)
        with pytest.raises(SimulatedCrashError):
            txn.atomic_insert(make_rows(12, seed=5))
        # detach-style recovery path: per-copy, decision log ignored
        for pid in sdb.participant_ids():
            sdb.recover_participant(pid)
        assert sdb.refresh_row_counts() == 60
        assert fingerprint(sdb) == baseline


# ----------------------------------------------------------------------
# the 2PC invariant validator
# ----------------------------------------------------------------------
class TestTxnInvariants:
    def setup_method(self):
        self._was = invariants.set_enabled(True)

    def teardown_method(self):
        invariants.set_enabled(self._was)

    def test_healthy_protocol_validates(self):
        sdb, txn = make_world()
        txn.atomic_load(make_rows(60))
        invariants.validate_txn_log(txn)

    def test_unilateral_commit_is_caught(self):
        sdb, txn = make_world()
        txn.atomic_load(make_rows(40))
        # drive one participant to a commit the decision log never saw
        pid = sdb.participant_ids()[0]
        sdb.begin_participant(pid, "rogue#9")
        sdb.insert_participant(pid, make_rows(4, seed=2))
        sdb.prepare_participant(pid, "rogue#9")
        sdb.commit_participant(pid, "rogue#9")
        with pytest.raises(InvariantViolation, match="unilateral"):
            invariants.validate_txn_log(txn)


# ----------------------------------------------------------------------
# telemetry rungs
# ----------------------------------------------------------------------
class TestTxnEvents:
    def test_commit_emits_every_rung_exactly_once(self):
        events = []
        register_txn_observer(events.append)
        try:
            sdb, txn = make_world(shards=2)
            txn.atomic_load(make_rows(40))
        finally:
            unregister_txn_observer(events.append)
        phases = [e.phase for e in events]
        assert phases.count("begin") == 1
        assert phases.count("prepared") == 2  # one per participant
        assert phases.count("decided") == 1
        assert phases.count("committed") == 2
        assert phases.count("acked") == 1
        assert all(isinstance(e, TxnEvent) for e in events)
        assert all(e.gid == "load#0" for e in events)

    def test_describe_mentions_gid_and_phase(self):
        event = TxnEvent(
            gid="load#0", phase="decided", verdict="commit", detail="2 shards"
        )
        text = event.describe()
        assert "load#0" in text
        assert "decided" in text
        assert "commit" in text
