"""Shared fixtures for the benchmark harness."""

import pytest

from repro.tpcd import TPCDConfig, generate


@pytest.fixture(scope="session")
def tpcd():
    """Memoized TPC-D dataset factory keyed by scale factor."""
    cache = {}

    def get(scale_factor: float):
        if scale_factor not in cache:
            cache[scale_factor] = generate(TPCDConfig(scale_factor=scale_factor))
        return cache[scale_factor]

    return get
