#!/bin/sh
# Runner for the wall-clock CPU kernel benchmark: emits BENCH_cpu.json
# at the repo root (pass --quick for the CI smoke variant).
cd "$(dirname "$0")/.." || exit 1
PYTHONPATH=src exec python benchmarks/bench_cpu_kernels.py "$@"
