"""Ablation: page capacity (tuples per Z-region).

Larger pages mean fewer, coarser Z-regions: fewer random accesses for
the Tetris sweep but more useless tuples per fetched page (worse
filtering ratio) and a bigger slice cache.  The paper fixes ~80 tuples
per 8 kB page; this ablation shows how the trade-off moves around that
point for a 50 % restriction.
"""

import random

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, ICDE99_TESTBED, SimulatedDisk

from _support import format_table, report

ROWS = 16000
CAPACITIES = [10, 20, 40, 80, 160]


def points():
    rng = random.Random(31)
    return [(rng.randrange(512), rng.randrange(512)) for _ in range(ROWS)]


DATA = points()


def run(capacity):
    disk = SimulatedDisk(ICDE99_TESTBED)
    tree = UBTree(BufferPool(disk, 128), ZSpace((9, 9)), page_capacity=capacity)
    for index, point in enumerate(DATA):
        tree.insert(point, index)
    box = QueryBox((0, 0), (255, 511))  # 50% restriction on dim 0
    scan = tetris_sorted(tree, box, 1)
    rows = sum(1 for _ in scan)
    useful = rows / (scan.stats.regions_read * capacity)
    return {
        "capacity": capacity,
        "regions": tree.region_count,
        "read": scan.stats.regions_read,
        "time": scan.stats.elapsed,
        "useful_fraction": useful,
        "cache": scan.stats.max_cache_tuples,
        "rows": rows,
    }


def test_ablation_page_capacity(benchmark):
    lines = benchmark.pedantic(
        lambda: [run(c) for c in CAPACITIES], rounds=1, iterations=1
    )

    report(
        "ablation_page_capacity",
        "Ablation — tuples per Z-region page (50% restriction, sorted read)\n\n"
        + format_table(
            ["capacity", "regions", "read", "sim time", "useful tuples/page", "cache"],
            [
                [
                    l["capacity"],
                    l["regions"],
                    l["read"],
                    f"{l['time']:.2f}s",
                    f"{l['useful_fraction']:.0%}",
                    l["cache"],
                ]
                for l in lines
            ],
        ),
    )

    # identical results at every capacity
    assert len({l["rows"] for l in lines}) == 1
    # bigger pages: monotonically fewer regions and fewer reads
    regions = [l["regions"] for l in lines]
    assert regions == sorted(regions, reverse=True)
    reads = [l["read"] for l in lines]
    assert reads == sorted(reads, reverse=True)
    # with a random-access cost per region, fewer reads = faster
    times = [l["time"] for l in lines]
    assert times == sorted(times, reverse=True)
    # the cache (in tuples) grows with page size
    assert lines[-1]["cache"] > lines[0]["cache"]
