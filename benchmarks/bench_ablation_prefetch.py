"""Ablation: the prefetch factor C.

The cost model's FTS advantage rests entirely on prefetching (``c_scan``
amortizes one positioning op over C pages), while Tetris and the IOTs
pay full random accesses regardless.  Sweeping C shows the FTS-sort
curve fall as C grows and the Tetris curve stay flat — and locates the
C below which Tetris would win even *without* any restriction benefit.
"""

import random

from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import ExternalMergeSort, FullTableScan, TetrisOperator
from repro.storage import DiskParameters

from _support import format_table, report

PREFETCH_VALUES = [1, 2, 4, 8, 16, 32]


def build_db(prefetch):
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 255)),
            Attribute("a2", IntEncoder(0, 255)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    db = Database(DiskParameters(t_pi=0.01, t_tau=0.001, prefetch=prefetch), 64)
    rng = random.Random(9)
    rows = [(rng.randrange(256), rng.randrange(256), i) for i in range(8000)]
    heap = db.create_heap_table("heap", schema, 40)
    heap.load(rows)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(rows)
    return db, heap, ub


def sweep():
    lines = []
    for prefetch in PREFETCH_VALUES:
        db, heap, ub = build_db(prefetch)
        db.reset_measurement()
        before = db.disk.snapshot()
        list(TetrisOperator(ub, {"a1": (0, 127)}, "a2"))
        tetris_time = (db.disk.snapshot() - before).time

        db.reset_measurement()
        before = db.disk.snapshot()
        list(
            ExternalMergeSort(
                FullTableScan(heap, predicate=lambda r: r[0] <= 127),
                key=lambda r: r[1],
                disk=db.disk,
                memory_pages=8,
                page_capacity=40,
            )
        )
        fts_time = (db.disk.snapshot() - before).time
        lines.append({"prefetch": prefetch, "tetris": tetris_time, "fts": fts_time})
    return lines


def test_ablation_prefetch(benchmark):
    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(
        "ablation_prefetch",
        "Ablation — prefetch window C (s1 = 50%, sort on A2)\n"
        "FTS-sort relies on C; the Tetris random accesses do not\n\n"
        + format_table(
            ["C", "Tetris", "FTS-sort", "winner"],
            [
                [
                    l["prefetch"],
                    f"{l['tetris']:.2f}s",
                    f"{l['fts']:.2f}s",
                    "tetris" if l["tetris"] < l["fts"] else "fts-sort",
                ]
                for l in lines
            ],
        ),
    )

    # Tetris cost is independent of C
    tetris_times = [l["tetris"] for l in lines]
    assert max(tetris_times) - min(tetris_times) < 1e-9
    # FTS-sort strictly improves with C
    fts_times = [l["fts"] for l in lines]
    assert all(a > b for a, b in zip(fts_times, fts_times[1:]))
    # without prefetching, Tetris dominates outright
    assert lines[0]["tetris"] < lines[0]["fts"] / 2
