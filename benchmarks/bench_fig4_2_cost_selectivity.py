"""Figure 4-2: sorting on A2 with a restriction on A1, selectivity sweep.

Analytic reproduction: evaluates the Section 4 cost functions for a
125k-page relation (about 1 GB at 8 kB pages) while the selectivity of
the A1 restriction varies from 0 to 100 %, with the exact device
parameters of Section 4.3 (t_pi=10 ms, t_tau=1 ms, C=16, M=32 MB, m=2).

Expected shape (asserted): the Tetris curve stays below FTS-sort across
the sweep; IOT-on-A1 wins only at very small selectivities; IOT-on-A2
becomes competitive only when A1 is hardly restricted.
"""

from repro.costmodel import (
    SECTION_4_PARAMS,
    c_fts_sort,
    c_iot_sort,
    c_tetris,
)

from _support import format_table, report

PAGES = 125_000
SELECTIVITIES = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def cost_lines():
    rows = []
    for s1 in SELECTIVITIES:
        rows.append(
            {
                "s1": s1,
                "tetris": c_tetris(PAGES, [(0.0, s1), (0.0, 1.0)], SECTION_4_PARAMS),
                "fts-sort": c_fts_sort(PAGES, [s1, 1.0], SECTION_4_PARAMS),
                "iot-a1-sort": c_iot_sort(PAGES, [s1, 1.0], SECTION_4_PARAMS),
                "iot-a2": c_iot_sort(
                    PAGES, [1.0, s1], SECTION_4_PARAMS, sort_on_leading=True
                ),
            }
        )
    return rows


def test_fig4_2_selectivity_sweep(benchmark):
    rows = benchmark.pedantic(cost_lines, rounds=1, iterations=1)

    table = format_table(
        ["s1", "Tetris", "FTS-sort", "IOT(A1)+sort", "IOT(A2) presorted"],
        [
            [
                f"{r['s1']:.0%}",
                f"{r['tetris']:.1f}s",
                f"{r['fts-sort']:.1f}s",
                f"{r['iot-a1-sort']:.1f}s",
                f"{r['iot-a2']:.1f}s",
            ]
            for r in rows
        ],
    )
    report(
        "fig4_2_cost_selectivity",
        "Figure 4-2 — sorting on A2 with a restriction in A1 (125k pages)\n"
        "paper shape: Tetris below FTS-sort everywhere; IOT(A1) only wins when\n"
        "A1 is very selective; IOT(A2) competitive only near s1 = 100%\n\n"
        + table,
    )

    # shape assertions straight from the paper's discussion
    for r in rows:
        assert r["tetris"] < r["fts-sort"], r["s1"]
    # IOT on A1 beats FTS-sort only at the selective end
    assert rows[0]["iot-a1-sort"] < rows[0]["fts-sort"]
    assert rows[-1]["iot-a1-sort"] > rows[-1]["fts-sort"]
    # IOT on A2 is competitive (beats Tetris) only with s1 near 1
    assert rows[-1]["iot-a2"] < rows[-1]["fts-sort"]
    assert rows[3]["iot-a2"] > rows[3]["tetris"] * 3
    benchmark.extra_info["rows"] = [
        {k: round(v, 2) if isinstance(v, float) else v for k, v in r.items()}
        for r in rows
    ]
