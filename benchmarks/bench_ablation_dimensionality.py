"""Ablation: dimensionality of the UB-Tree organization.

Section 6 claims I/O linear in the result and sub-linear cache "for
dimensionalities typical for relational databases".  This ablation keeps
the data and the restriction fixed (one attribute restricted to 25 %,
sort on another) and varies how many attributes the UB-Tree indexes:
more dimensions dilute the split granularity per attribute, so the
restriction prunes fewer regions and the cache grows — quantifying the
paper's implicit advice to index only the attributes that queries
restrict or sort.
"""

import random

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, SimulatedDisk

from _support import format_table, report

ROWS = 12000
BITS = 8


def _points():
    """One fixed 4-dimensional point set; lower-d trees project it, so
    the restricted result is identical across dimensionalities."""
    rng = random.Random(21)
    return [
        tuple(rng.randrange(1 << BITS) for _ in range(4)) for _ in range(ROWS)
    ]


POINTS = _points()


def build(dims):
    disk = SimulatedDisk()
    tree = UBTree(
        BufferPool(disk, 256), ZSpace([BITS] * dims), page_capacity=16
    )
    for index, point in enumerate(POINTS):
        tree.insert(point[:dims], index)
    return tree


def sweep():
    lines = []
    for dims in (2, 3, 4):
        tree = build(dims)
        lo = [0] * dims
        hi = [(1 << BITS) - 1] * dims
        hi[0] = (1 << BITS) // 4 - 1  # 25% restriction on attribute 0
        scan = tetris_sorted(tree, QueryBox(lo, hi), 1)
        rows = sum(1 for _ in scan)
        lines.append(
            {
                "dims": dims,
                "regions_total": tree.region_count,
                "regions_read": scan.stats.regions_read,
                "fraction": scan.stats.regions_read / tree.region_count,
                "cache": scan.stats.max_cache_tuples,
                "rows": rows,
            }
        )
    return lines


def test_ablation_dimensionality(benchmark):
    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(
        "ablation_dimensionality",
        "Ablation — UB-Tree dimensionality (25% restriction on A1, sort A2)\n\n"
        + format_table(
            ["d", "regions", "read", "fraction", "peak cache", "rows"],
            [
                [
                    l["dims"],
                    l["regions_total"],
                    l["regions_read"],
                    f"{l['fraction']:.0%}",
                    l["cache"],
                    l["rows"],
                ]
                for l in lines
            ],
        ),
    )

    # same logical result regardless of the physical dimensionality
    assert len({l["rows"] for l in lines}) == 1
    # the restricted fraction of regions grows with dimensionality
    # (coarser per-attribute splits), and so does the slice cache
    fractions = [l["fraction"] for l in lines]
    assert fractions == sorted(fractions)
    caches = [l["cache"] for l in lines]
    assert caches[0] < caches[-1]
    # in 2-d the 25% restriction prunes well below half the regions
    assert fractions[0] < 0.5
