"""Cost-model validation: measured Z-region counts vs. the n_j product.

Section 4.2 claims the region-count formula "describes the actual
behavior of the UB-Tree very accurately".  This benchmark builds uniform
UB-Trees of several sizes and dimensionalities, runs Tetris sweeps at a
grid of selectivities and compares the measured number of regions read
with ``Π n_j(d, P, y_j, z_j)``.
"""

import random

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.costmodel import tetris_regions
from repro.storage import BufferPool, SimulatedDisk

from _support import format_table, report


def build(bits, rows, seed=0, page_capacity=8):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace(bits), page_capacity=page_capacity)
    rng = random.Random(seed)
    for index in range(rows):
        tree.insert(tuple(rng.randrange(1 << b) for b in bits), index)
    return tree


def validate():
    cases = []
    for bits, rows in [((8, 8), 4000), ((8, 8), 12000), ((6, 6, 6), 8000)]:
        tree = build(bits, rows)
        dims = len(bits)
        for selectivity in (0.25, 0.5, 1.0):
            lo = [0] * dims
            hi = [int(selectivity * (1 << b)) - 1 for b in bits]
            hi[-1] = (1 << bits[-1]) - 1  # restrict all but the sort dim
            ranges = [
                (0.0, (h + 1) / (1 << b)) for h, b in zip(hi, bits)
            ]
            scan = tetris_sorted(tree, QueryBox(lo, hi), dims - 1)
            for _ in scan:
                pass
            predicted = tetris_regions(tree.page_count, ranges)
            cases.append(
                {
                    "dims": dims,
                    "pages": tree.page_count,
                    "selectivity": selectivity,
                    "measured": scan.stats.regions_read,
                    "predicted": predicted,
                    "ratio": scan.stats.regions_read / predicted,
                }
            )
    return cases


def test_costmodel_region_counts(benchmark):
    cases = benchmark.pedantic(validate, rounds=1, iterations=1)

    report(
        "costmodel_validation",
        "Cost-model validation — measured regions read vs Π n_j\n\n"
        + format_table(
            ["d", "P (regions)", "restriction", "measured", "predicted", "ratio"],
            [
                [
                    c["dims"],
                    c["pages"],
                    f"{c['selectivity']:.0%}",
                    c["measured"],
                    f"{c['predicted']:.0f}",
                    f"{c['ratio']:.2f}",
                ]
                for c in cases
            ],
        ),
    )

    for case in cases:
        assert 0.35 <= case["ratio"] <= 2.5, case
    # unrestricted sweeps must touch essentially every region
    full = [c for c in cases if c["selectivity"] == 1.0]
    for case in full:
        assert case["measured"] == case["pages"]
    mean_ratio = sum(c["ratio"] for c in cases) / len(cases)
    benchmark.extra_info["mean_ratio"] = round(mean_ratio, 3)
    assert 0.6 <= mean_ratio <= 1.7
