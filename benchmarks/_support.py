"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and emits a
plain-text report with the measured series next to the paper's published
numbers.  Reports are written to ``benchmarks/results/`` (pytest captures
stdout, so files are the reliable channel) and also printed for ``-s``
runs.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def ensure_checks_disabled() -> None:
    """Refuse to time anything while invariant checking is on.

    ``REPRO_CHECKS=1`` re-validates structures inside the hot paths and
    re-runs page kernels on the second backend; numbers measured that
    way are debug-mode numbers and must never land in a report or in
    ``BENCH_cpu.json``.
    """
    from repro import invariants

    if invariants.enabled():
        raise RuntimeError(
            "benchmarks must run with invariant checks disabled "
            "(unset REPRO_CHECKS); checks-on timings are not comparable"
        )


def ensure_fault_free() -> None:
    """Refuse to time anything while fault injection is armed.

    An armed :class:`~repro.storage.faults.FaultPlan` charges retry
    backoff and latency spikes to the simulated clock and perturbs page
    access patterns; numbers measured that way are chaos-mode numbers
    and must never land in a report or in ``BENCH_cpu.json``.  Mirrors
    :func:`ensure_checks_disabled` for the REPRO_CHECKS guard.
    """
    from repro.storage import armed_disk_count

    armed = armed_disk_count()
    if armed:
        raise RuntimeError(
            f"benchmarks must run fault-free, but {armed} FaultyDisk "
            "instance(s) are armed; disarm fault injection before timing"
        )


def ensure_prefetch_free() -> None:
    """Refuse to time CPU work while an I/O scheduler is armed.

    A live :class:`~repro.storage.scheduler.IOScheduler` changes page
    access order (async submissions, claim-time verification) and adds
    bookkeeping to every read; CPU-kernel timings taken with one armed
    would mix prefetch machinery into numbers that are supposed to
    isolate kernel work.  Scheduler timings belong in
    ``BENCH_parallel.json``, produced by ``bench_parallel.py``.
    """
    from repro.storage import armed_scheduler_count

    armed = armed_scheduler_count()
    if armed:
        raise RuntimeError(
            f"CPU benchmarks must run without prefetching, but {armed} "
            "IOScheduler instance(s) are armed; disarm the scheduler "
            "before timing (use bench_parallel.py for scheduler numbers)"
        )


ensure_checks_disabled()
ensure_fault_free()
ensure_prefetch_free()


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def report(name: str, text: str) -> str:
    """Persist a benchmark report and echo it (visible with ``pytest -s``)."""
    # re-checked at write time: a benchmark could have armed a FaultyDisk,
    # an IOScheduler (or flipped checks on) after this module was imported
    ensure_checks_disabled()
    ensure_fault_free()
    ensure_prefetch_free()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n[{name}]\n{text}\n(report saved to {path})")
    return path


def seconds(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}s"


def ratio(slow: float, fast: float) -> str:
    if fast <= 0:
        return "-"
    return f"{slow / fast:.1f}x"
