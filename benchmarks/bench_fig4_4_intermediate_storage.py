"""Figure 4-4: intermediate storage sizes (and time to first result).

Analytic reproduction of Section 4.4 with s1 = 20 %: the merge sort
behind FTS/IOT needs temporary storage linear in the restricted data,
while the Tetris cache holds one slice — a square-root law for 2-d
UB-Trees.  Qualitatively the same curves describe the delay until the
first result is available.
"""

import math

from repro.costmodel import (
    SECTION_4_PARAMS,
    c_fts_sort,
    merge_sort_temp_pages,
    tetris_cache_pages,
    tetris_first_response,
)

from _support import format_table, report

SELECTIVITY = 0.2
TABLE_PAGES = [10_000, 25_000, 50_000, 125_000, 250_000, 500_000, 1_000_000]
PAGE_KB = 8


def storage_lines():
    rows = []
    for pages in TABLE_PAGES:
        ranges = [(0.0, SELECTIVITY), (0.0, 1.0)]
        rows.append(
            {
                "pages": pages,
                "merge_temp": merge_sort_temp_pages(pages, [SELECTIVITY, 1.0]),
                "tetris_cache": tetris_cache_pages(pages, ranges, 1),
                "tetris_first": tetris_first_response(pages, ranges, 1),
                "sort_first": c_fts_sort(pages, [SELECTIVITY, 1.0]),
            }
        )
    return rows


def test_fig4_4_intermediate_storage(benchmark):
    rows = benchmark.pedantic(storage_lines, rounds=1, iterations=1)

    table = format_table(
        ["pages", "merge-sort temp", "Tetris cache", "1st result sort", "1st result Tetris"],
        [
            [
                f"{r['pages']:,}",
                f"{r['merge_temp'] * PAGE_KB / 1024:.1f} MB",
                f"{r['tetris_cache'] * PAGE_KB / 1024:.2f} MB",
                f"{r['sort_first']:.1f}s",
                f"{r['tetris_first']:.2f}s",
            ]
            for r in rows
        ],
    )
    report(
        "fig4_4_intermediate_storage",
        "Figure 4-4 — intermediate storage, s1 = 20% (and first-result delay)\n"
        "paper shape: merge-sort temp grows linearly, the Tetris cache like a\n"
        "square root; first results arrive orders of magnitude earlier\n\n"
        + table,
    )

    # linear vs sqrt growth
    first, last = rows[0], rows[-1]
    size_factor = last["pages"] / first["pages"]
    assert last["merge_temp"] / first["merge_temp"] == size_factor
    cache_growth = last["tetris_cache"] / first["tetris_cache"]
    assert cache_growth < math.sqrt(size_factor) * 2
    # the sqrt law of Section 4.4 within a small factor
    for r in rows:
        sqrt_law = math.sqrt(r["pages"] * SELECTIVITY * 1.0)
        assert 0.3 <= r["tetris_cache"] / sqrt_law <= 3.0
    # first results orders of magnitude earlier
    for r in rows:
        assert r["tetris_first"] < r["sort_first"] / 30
    benchmark.extra_info["cache_growth_factor"] = round(cache_growth, 2)
