"""Ablation: bulk loading vs. insert-grown UB-Trees.

The paper's trees grow by insertion splits (≈70 % page fill).  An
initial bulk load packs Z-regions full, shrinking the region count by
the fill-factor ratio — and since the Tetris algorithm pays one random
access per region, query time shrinks proportionally.  The sort order
and results are unchanged.
"""

import random

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, ICDE99_TESTBED, SimulatedDisk

from _support import format_table, report

ROWS = 20000
BITS = (8, 8)
PAGE_CAPACITY = 16


def points():
    rng = random.Random(13)
    return [
        (rng.randrange(1 << BITS[0]), rng.randrange(1 << BITS[1]))
        for _ in range(ROWS)
    ]


def run(load_mode):
    disk = SimulatedDisk(ICDE99_TESTBED)
    tree = UBTree(BufferPool(disk, 128), ZSpace(BITS), page_capacity=PAGE_CAPACITY)
    data = points()
    if load_mode == "bulk":
        tree.bulk_load((p, i) for i, p in enumerate(data))
    else:
        for i, p in enumerate(data):
            tree.insert(p, i)
    box = QueryBox((0, 64), (127, 191))
    scan = tetris_sorted(tree, box, 1)
    rows = sum(1 for _ in scan)
    return {
        "regions_total": tree.region_count,
        "regions_read": scan.stats.regions_read,
        "time": scan.stats.elapsed,
        "rows": rows,
        "cache": scan.stats.max_cache_tuples,
    }


def test_ablation_bulk_load(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: run(mode) for mode in ("insert-grown", "bulk")},
        rounds=1,
        iterations=1,
    )

    report(
        "ablation_bulk_load",
        "Ablation — insert-grown vs bulk-loaded UB-Tree (same data, same query)\n\n"
        + format_table(
            ["load", "regions", "regions read", "sim time", "rows", "peak cache"],
            [
                [
                    mode,
                    r["regions_total"],
                    r["regions_read"],
                    f"{r['time']:.2f}s",
                    r["rows"],
                    r["cache"],
                ]
                for mode, r in results.items()
            ],
        ),
    )

    grown, bulk = results["insert-grown"], results["bulk"]
    assert bulk["rows"] == grown["rows"]
    # full pages -> fewer regions -> fewer random accesses -> faster
    assert bulk["regions_total"] < grown["regions_total"]
    assert bulk["regions_read"] < grown["regions_read"]
    assert bulk["time"] < grown["time"]
    fill_gain = grown["regions_total"] / bulk["regions_total"]
    assert 1.1 <= fill_gain <= 2.2  # ≈ 1/0.7, the classic B-tree fill ratio
    benchmark.extra_info["fill_gain"] = round(fill_gain, 2)
