"""End-to-end Q4 (Figures 5-7 / 5-8): EXISTS via the triangular space.

The paper describes — but does not implement — pushing the
non-rectangular restriction ``COMMITDATE < RECEIPTDATE`` into the sweep.
This benchmark runs the full Q4 twice over the 3-D LINEITEM instance:
once with the triangle inside the Tetris operator (regions that cannot
contain a late lineitem are skipped without I/O) and once filtering the
predicate above an unrestricted sweep.  Same result, fewer pages.
"""

from repro.relational.operators import MergeSemiJoin, TetrisOperator
from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans, reference_q4
from repro.tpcd.queries import L_COMMITDATE, L_ORDERKEY, L_RECEIPTDATE, Q4Params

from _support import format_table, report

SCALE = 1.0


def run_both(data):
    params = Q4Params()
    db = Database(ICDE99_TESTBED, buffer_pages=256)
    order_ub = plans.build_order_ub(db, data)
    lineitem_ub = plans.build_lineitem_ub_q4(db, data)

    # (a) triangle pushed into the sweep (the paper's proposed extension)
    db.reset_measurement()
    before = db.disk.snapshot()
    order_plan, _ = plans.q4_order_access("tetris", db, order_ub, params)
    pushed_rows = list(plans.q4_full_plan(db, order_plan, lineitem_ub, params))
    pushed = db.disk.snapshot() - before

    # (b) predicate evaluated above an unrestricted ORDERKEY sweep
    db.reset_measurement()
    before = db.disk.snapshot()
    order_plan, _ = plans.q4_order_access("tetris", db, order_ub, params)
    unpushed_stream = TetrisOperator(
        lineitem_ub,
        None,  # no geometric restriction at all
        "l_orderkey",
        predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
    )
    semijoined = MergeSemiJoin(
        order_plan,
        unpushed_stream,
        left_key=lambda row: row[0],
        right_key=lambda row: row[L_ORDERKEY],
    )
    from repro.relational.operators import Count, InMemorySort, SortedGroupBy

    unpushed_rows = list(
        SortedGroupBy(
            InMemorySort(semijoined, key=lambda row: row[3]),
            key=lambda row: (row[3],),
            aggregates=[Count()],
        )
    )
    unpushed = db.disk.snapshot() - before
    return {
        "pushed_rows": pushed_rows,
        "unpushed_rows": unpushed_rows,
        "pushed": pushed,
        "unpushed": unpushed,
        "reference": reference_q4(data, params),
    }


def test_q4_full_plan_triangle(benchmark, tpcd):
    data = tpcd(SCALE)
    results = benchmark.pedantic(run_both, args=(data,), rounds=1, iterations=1)

    report(
        "q4_full_plan",
        f"End-to-end Q4 at SF {SCALE} (mini scale) — the non-rectangular\n"
        "query space extension of Section 5.2, implemented\n\n"
        + format_table(
            ["plan", "sim time", "pages read"],
            [
                ["triangle pushed into sweep", f"{results['pushed'].time:.2f}s",
                 results["pushed"].pages_read],
                ["predicate above sweep", f"{results['unpushed'].time:.2f}s",
                 results["unpushed"].pages_read],
            ],
        ),
    )

    assert results["pushed_rows"] == results["reference"]
    assert results["unpushed_rows"] == results["reference"]
    # pushing the triangle reads fewer pages and is at least as fast
    assert results["pushed"].pages_read <= results["unpushed"].pages_read
    assert results["pushed"].time <= results["unpushed"].time
    benchmark.extra_info["pages_saved"] = (
        results["unpushed"].pages_read - results["pushed"].pages_read
    )
