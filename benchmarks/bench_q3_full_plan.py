"""End-to-end Q3 (Figures 5-2 / 5-3): Tetris operator trees vs. classic plan.

Runs the *complete* query — restrictions on three relations, two joins,
grouping with aggregation, final ordering — through three plans:

* ``classic``: FTS + hash join + external merge sort (Figure 5-2),
* ``hybrid``: classic customer/order side, Tetris for the LINEITEM leg —
  the paper's measured scenario ("since the LINEITEM table is the major
  bottleneck for Q3, we focus on this relation", Section 5.1) embedded
  in the full query,
* ``tetris``: the full Tetris operator tree of Figure 5-3.

All three must produce the identical result.  Assertions: the hybrid
plan beats the classic plan (the LINEITEM leg dominates) and the Tetris
legs write zero temporary pages while the classic sort spills.
"""

from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans, reference_q3
from repro.tpcd.queries import Q3Params

from _support import format_table, report

SCALE = 1.0


def run_all(data):
    params = Q3Params()
    db = Database(ICDE99_TESTBED, buffer_pages=256)
    customer_ub = plans.build_customer_ub(db, data)
    order_ub = plans.build_order_ub(db, data)
    lineitem_ub = plans.build_lineitem_ub_sort(db, data)
    customer_heap = plans.build_customer_heap(db, data)
    order_heap = plans.build_order_heap(db, data)
    lineitem_heap = plans.build_lineitem_heap(db, data)

    results = {}

    db.reset_measurement()
    before = db.disk.snapshot()
    access, _ = plans.q3_lineitem_access("fts-sort", db, lineitem_heap, params)
    rows = list(
        plans.q3_full_plan(
            db, customer_heap, order_heap, access, params, use_tetris=False
        )
    )
    results["classic"] = (rows, db.disk.snapshot() - before)

    db.reset_measurement()
    before = db.disk.snapshot()
    access, _ = plans.q3_lineitem_access("tetris", db, lineitem_ub, params)
    rows = list(
        plans.q3_full_plan(
            db, customer_heap, order_heap, access, params, use_tetris=False
        )
    )
    results["hybrid"] = (rows, db.disk.snapshot() - before)

    db.reset_measurement()
    before = db.disk.snapshot()
    access, _ = plans.q3_lineitem_access("tetris", db, lineitem_ub, params)
    rows = list(
        plans.q3_full_plan(db, customer_ub, order_ub, access, params, use_tetris=True)
    )
    results["tetris"] = (rows, db.disk.snapshot() - before)

    results["reference"] = reference_q3(data, params)
    return results


def test_q3_full_plan(benchmark, tpcd):
    data = tpcd(SCALE)
    results = benchmark.pedantic(run_all, args=(data,), rounds=1, iterations=1)

    table_rows = []
    for plan_name in ("classic", "hybrid", "tetris"):
        rows, delta = results[plan_name]
        table_rows.append(
            [
                plan_name,
                f"{delta.time:.2f}s",
                delta.pages_read,
                delta.pages_written,
                len(rows),
            ]
        )
    report(
        "q3_full_plan",
        f"End-to-end Q3 at SF {SCALE} (mini scale)\n"
        "hybrid = classic C/O side + Tetris LINEITEM leg (the paper's\n"
        "measured scenario); tetris = full Figure 5-3 operator tree\n\n"
        + format_table(
            ["plan", "sim time", "pages read", "temp pages written", "rows"],
            table_rows,
        ),
    )

    reference = results["reference"]
    for plan_name in ("classic", "hybrid", "tetris"):
        rows, _ = results[plan_name]
        assert [r[3] for r in rows] == [r[3] for r in reference], plan_name

    classic_delta = results["classic"][1]
    hybrid_delta = results["hybrid"][1]
    tetris_delta = results["tetris"][1]
    # the Tetris LINEITEM leg wins where the paper measured it
    assert hybrid_delta.time < classic_delta.time
    # Tetris legs never touch temporary storage
    assert tetris_delta.pages_written == 0
    assert classic_delta.pages_written > 0
    benchmark.extra_info["classic_s"] = round(classic_delta.time, 2)
    benchmark.extra_info["hybrid_s"] = round(hybrid_delta.time, 2)
    benchmark.extra_info["tetris_s"] = round(tetris_delta.time, 2)
