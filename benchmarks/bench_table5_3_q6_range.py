"""Table 5-3 / Figure 5-12: Q6 — multi-attribute restriction on LINEITEM.

Measured reproduction.  LINEITEM is materialized as heap, three IOTs
(one per restricted attribute) and the 3-D UB-Tree (SHIPDATE, DISCOUNT,
QUANTITY).  The UB-Tree range query touches only the pages overlapping
the query box; every IOT can use just one attribute and pays a random
access per page; the FTS reads everything but with prefetching.

Asserted shape (the paper's): Tetris < FTS < IOT(SHIPDATE) <
IOT(DISCOUNT) < IOT(QUANTITY), matching the restriction selectivities
20 % / 27 % / 48 %.
"""

import pytest

from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans, reference_q6
from repro.tpcd.queries import Q6Params

from _support import format_table, report

PAPER = {
    0.25: {"iot_qt": 460.7, "iot_di": 339.2, "iot_sd": 208.1, "fts": 47.7, "tetris": 12.0},
    0.5: {"iot_qt": 921.4, "iot_di": 678.4, "iot_sd": 416.3, "fts": 93.9, "tetris": 21.3},
    1.0: {"iot_qt": 1842.8, "iot_di": 1356.8, "iot_sd": 832.5, "fts": 187.6, "tetris": 30.5},
}


def measure_scale(data):
    db = Database(ICDE99_TESTBED, buffer_pages=128)
    heap = plans.build_lineitem_heap(db, data)
    ub = plans.build_lineitem_ub_range(db, data)
    iot_sd = plans.build_lineitem_iot(db, data, "l_shipdate")
    iot_di = plans.build_lineitem_iot(db, data, "l_discount")
    iot_qt = plans.build_lineitem_iot(db, data, "l_quantity")
    params = Q6Params()
    expected = reference_q6(data, params)

    results = {}
    for method, table in [
        ("tetris", ub),
        ("fts", heap),
        ("iot_sd", iot_sd),
        ("iot_di", iot_di),
        ("iot_qt", iot_qt),
    ]:
        db.reset_measurement()
        before = db.disk.snapshot()
        plan = plans.q6_full_plan(
            {"tetris": "tetris", "fts": "fts", "iot_sd": "iot-shipdate",
             "iot_di": "iot-discount", "iot_qt": "iot-quantity"}[method],
            db, table, params,
        )
        ((total,),) = [tuple(r) for r in plan]
        assert total == expected, method
        delta = db.disk.snapshot() - before
        results[method] = {"time": delta.time, "pages": delta.pages_read}
    results["table_pages"] = heap.page_count
    return results


@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
def test_table5_3_q6(benchmark, tpcd, scale):
    data = tpcd(scale)
    results = benchmark.pedantic(measure_scale, args=(data,), rounds=1, iterations=1)
    paper = PAPER[scale]

    rows = [
        [label, f"{paper[key]}s", f"{results[key]['time']:.2f}s",
         results[key]["pages"]]
        for label, key in [
            ("Time IOT QUANTITY", "iot_qt"),
            ("Time IOT DISCOUNT", "iot_di"),
            ("Time IOT SHIPDATE", "iot_sd"),
            ("Time FTS", "fts"),
            ("Time Tetris", "tetris"),
        ]
    ]
    report(
        f"table5_3_q6_sf{scale}",
        f"Table 5-3 — Q6 multi-attribute restriction (SF {scale}, "
        f"{results['table_pages']} heap pages)\n"
        "paper: Oracle wall clock at full scale; measured: simulated I/O at\n"
        "1/100 scale — the asserted ordering is the paper's\n\n"
        + format_table(["metric", "paper", "measured", "pages read"], rows),
    )

    # the paper's full ordering
    assert results["tetris"]["time"] < results["fts"]["time"]
    assert results["fts"]["time"] < results["iot_sd"]["time"]
    assert results["iot_sd"]["time"] < results["iot_di"]["time"]
    assert results["iot_di"]["time"] < results["iot_qt"]["time"]
    # Tetris reads only a fraction of the relation's pages
    assert results["tetris"]["pages"] < results["fts"]["pages"] / 2
    benchmark.extra_info["speedup_vs_fts"] = round(
        results["fts"]["time"] / results["tetris"]["time"], 2
    )
