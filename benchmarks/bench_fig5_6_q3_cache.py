"""Figure 5-6: Q3 cache size — Tetris cache vs. merge-sort temp storage.

Measured companion to Table 5-1's storage columns across scale factors:
the Tetris cache (one slice) stays two orders of magnitude below the
temporary storage of the sort-based plans and grows sublinearly.
"""

import pytest

from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans
from repro.tpcd.queries import Q3Params

from _support import format_table, report

SCALES = [0.25, 0.5, 1.0]
PAGE_MB = 8 / 1024

#: the paper's cache/temp columns of Table 5-1 (MB)
PAPER = {0.25: (1.4, 183), 0.5: (2.1, 326), 1.0: (2.6, 751)}


def measure(data):
    db = Database(ICDE99_TESTBED, buffer_pages=128)
    heap = plans.build_lineitem_heap(db, data)
    ub = plans.build_lineitem_ub_sort(db, data)
    params = Q3Params()

    db.reset_measurement()
    tetris_plan, tetris_op = plans.q3_lineitem_access("tetris", db, ub, params)
    rows = sum(1 for _ in tetris_plan)
    cache_mb = tetris_op.stats.cache_pages(ub.page_capacity) * PAGE_MB

    db.reset_measurement()
    fts_plan, sort_op = plans.q3_lineitem_access("fts-sort", db, heap, params)
    assert sum(1 for _ in fts_plan) == rows
    temp_mb = sort_op.stats.peak_temp_pages * PAGE_MB
    return {
        "cache_mb": cache_mb,
        "temp_mb": temp_mb,
        "table_mb": heap.page_count * PAGE_MB,
        "cache_tuples": tetris_op.stats.max_cache_tuples,
        "result_rows": rows,
    }


def test_fig5_6_cache_vs_temp(benchmark, tpcd):
    results = benchmark.pedantic(
        lambda: {scale: measure(tpcd(scale)) for scale in SCALES},
        rounds=1,
        iterations=1,
    )

    rows = []
    for scale in SCALES:
        r = results[scale]
        paper_cache, paper_temp = PAPER[scale]
        rows.append(
            [
                scale,
                f"{r['table_mb']:.1f}MB",
                f"{paper_cache}MB",
                f"{r['cache_mb']:.2f}MB",
                f"{paper_temp}MB",
                f"{r['temp_mb']:.1f}MB",
            ]
        )
    report(
        "fig5_6_q3_cache",
        "Figure 5-6 — Q3 cache size: Tetris cache vs merge-sort temp storage\n"
        "(paper columns at full scale, measured at 1/100 scale)\n\n"
        + format_table(
            ["SF", "table", "paper cache", "measured cache", "paper temp", "measured temp"],
            rows,
        ),
    )

    for scale in SCALES:
        r = results[scale]
        # the cache is a small fraction of both the temp storage and result
        assert r["cache_mb"] < r["temp_mb"] / 10, scale
        assert r["cache_tuples"] < r["result_rows"] / 4, scale
    # sublinear growth: 4x data -> far less than 4x cache
    growth = results[1.0]["cache_mb"] / results[0.25]["cache_mb"]
    temp_growth = results[1.0]["temp_mb"] / results[0.25]["temp_mb"]
    assert growth < temp_growth
    benchmark.extra_info["cache_growth"] = round(growth, 2)
    benchmark.extra_info["temp_growth"] = round(temp_growth, 2)
