"""Table 5-1 / Figure 5-5: Q3 — sorting 50 % of LINEITEM on ORDERKEY.

Measured reproduction on the simulated disk (testbed parameters of
Section 5: t_pi = 8 ms, t_tau = 0.7 ms).  For each scale factor the
LINEITEM relation is materialized as four physical instances — heap,
IOT(ORDERKEY), IOT(SHIPDATE), 2-D UB-Tree(ORDERKEY, SHIPDATE) — and the
restricted, ORDERKEY-sorted access is executed through each.

Paper numbers are printed next to the measured ones.  Absolute seconds
differ (1/100-scale data, pure-I/O simulation); the asserted *shape* is
the paper's: Tetris fastest overall, first response orders of magnitude
ahead, Tetris cache orders of magnitude below the sort's temp storage,
both IOTs behind FTS-sort.
"""

import pytest

from repro.relational.operators import FirstTupleTimer
from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans
from repro.tpcd.queries import Q3Params

from _support import format_table, report

#: Table 5-1 as printed in the paper (seconds / MB), keyed by SF.
PAPER = {
    0.25: {"first": 1.3, "slices": 256, "iot_ok": 834.3, "iot_sd": 1223.7,
           "fts": 816.5, "tetris": 257.5, "cache_mb": 1.4, "temp_mb": 183},
    0.5: {"first": 1.3, "slices": 256, "iot_ok": 1753.6, "iot_sd": 2569.8,
          "fts": 1479.4, "tetris": 441.2, "cache_mb": 2.1, "temp_mb": 326},
    1.0: {"first": 3.3, "slices": 512, "iot_ok": 3604.1, "iot_sd": 5286.4,
          "fts": 3276.4, "tetris": 1062.2, "cache_mb": 2.6, "temp_mb": 751},
}
PAGE_MB = 8 / 1024  # 8 kB pages


def measure_scale(data):
    db = Database(ICDE99_TESTBED, buffer_pages=128)
    heap = plans.build_lineitem_heap(db, data)
    iot_ok = plans.build_lineitem_iot(db, data, "l_orderkey")
    iot_sd = plans.build_lineitem_iot(db, data, "l_shipdate")
    ub = plans.build_lineitem_ub_sort(db, data)
    params = Q3Params()

    results = {}
    for method, table in [
        ("tetris", ub),
        ("fts", heap),
        ("iot_ok", iot_ok),
        ("iot_sd", iot_sd),
    ]:
        db.reset_measurement()
        before = db.disk.snapshot()
        plan, instrumented = plans.q3_lineitem_access(
            {"tetris": "tetris", "fts": "fts-sort", "iot_ok": "iot-orderkey",
             "iot_sd": "iot-shipdate"}[method],
            db, table, params,
        )
        timer = FirstTupleTimer(plan, db.disk)
        rows = sum(1 for _ in timer)
        delta = db.disk.snapshot() - before
        entry = {
            "time": delta.time,
            "first": timer.time_to_first,
            "rows": rows,
        }
        if method == "tetris":
            stats = instrumented.stats
            entry["slices"] = stats.slices
            entry["cache_mb"] = stats.cache_pages(table.page_capacity) * PAGE_MB
        elif instrumented is not None:
            entry["temp_mb"] = instrumented.stats.peak_temp_pages * PAGE_MB
        results[method] = entry
    results["table_mb"] = heap.page_count * PAGE_MB
    return results


@pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
def test_table5_1_q3_lineitem(benchmark, tpcd, scale):
    data = tpcd(scale)
    results = benchmark.pedantic(measure_scale, args=(data,), rounds=1, iterations=1)
    paper = PAPER[scale]

    rows = [
        ["Tetris 1st response", f"{paper['first']}s",
         f"{results['tetris']['first']:.3f}s"],
        ["Tetris slices", paper["slices"], results["tetris"]["slices"]],
        ["Time IOT ORDERKEY", f"{paper['iot_ok']}s", f"{results['iot_ok']['time']:.1f}s"],
        ["Time IOT SHIPDATE", f"{paper['iot_sd']}s", f"{results['iot_sd']['time']:.1f}s"],
        ["Time FTS-Sort", f"{paper['fts']}s", f"{results['fts']['time']:.1f}s"],
        ["Time Tetris", f"{paper['tetris']}s", f"{results['tetris']['time']:.1f}s"],
        ["Cache Tetris", f"{paper['cache_mb']}MB",
         f"{results['tetris']['cache_mb']:.2f}MB"],
        ["Temp Storage IOT/FTS", f"{paper['temp_mb']}MB",
         f"{results['fts']['temp_mb']:.1f}MB"],
    ]
    report(
        f"table5_1_q3_lineitem_sf{scale}",
        f"Table 5-1 — sorting 50% of LINEITEM by ORDERKEY (SF {scale}, "
        f"mini-scale {results['table_mb']:.1f}MB table)\n"
        "paper numbers are Oracle wall clock at full scale; measured numbers\n"
        "are simulated I/O time at 1/100 data scale — compare shapes, not\n"
        "absolute values\n\n"
        + format_table(["metric", "paper", "measured"], rows),
    )

    tetris = results["tetris"]
    # all methods produced the same result cardinality
    assert len({r["rows"] for r in (tetris, results["fts"], results["iot_ok"], results["iot_sd"])}) == 1
    # Tetris is the fastest access method.  At the smallest mini-scale
    # (SF 0.25 ≈ a 1.5 MB table) the merge sort barely spills, putting the
    # comparison on the left edge of Figure 4-3 where FTS-sort still wins
    # narrowly — there we assert near-parity instead.
    if scale >= 0.5:
        assert tetris["time"] < results["fts"]["time"]
    else:
        assert tetris["time"] < results["fts"]["time"] * 1.5
    assert tetris["time"] < results["iot_ok"]["time"]
    assert tetris["time"] < results["iot_sd"]["time"]
    # first response arrives at least an order of magnitude earlier than
    # the blocking sort-based plans
    assert tetris["first"] < results["fts"]["first"] / 10
    assert tetris["first"] < results["iot_sd"]["first"] / 10
    # Tetris cache far below the merge sort's temporary storage
    assert tetris["cache_mb"] < results["fts"]["temp_mb"] / 10
    # no temporary pages at all for Tetris (checked via slices > 1 pipelining)
    assert tetris["slices"] > 10
