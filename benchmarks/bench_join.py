"""Pipelined join ladder benchmark (simulated clock) -> BENCH_join.json.

One measurement backs the pipelined-join PR's performance claims: Q3
and Q4 run end-to-end through the full plan ladder on a *correlated*
TPC-D instance (``correlated_dates=True`` — orderdate nearly monotone
in orderkey, the layout of an order table grown over time):

* ``classic``   — FTS + external merge sort feeding the join,
* ``tetris``    — Tetris operator tree (no pushdown),
* ``pushdown``  — the restricted build side evaluated first, its
  join keys coalesced into a bounded interval cover and pushed into
  the LINEITEM sweep (``planner/pushdown.py``), which then *skips*
  whole Z-regions holding no qualifying key,
* ``sharded``   — the core join co-partitioned over k = 1..8 range
  shards on the join key (:class:`~repro.shard.CoPartitionedJoin`),
  every k bit-identical to the serial join and monotone in simulated
  elapsed time (measured on an *uncorrelated* instance so the range
  shards carry balanced work — see :func:`bench_sharded_joins`),

plus a dual-cursor overlap measurement: the Q4 semi-join re-run on a
multi-device database where a
:class:`~repro.storage.prefetch.DualCursorPrefetcher` issues
read-ahead for whichever side the merge cursor demands next, so the
two sweeps overlap instead of serializing.

Per rung the report records total simulated time, first-tuple latency,
pages touched (probe ``regions_read``) and pages skipped by the
pushdown.  ``--assert-pushdown`` turns the performance expectations
(strict page reduction, monotone shard scaling, prefetch no slower)
into hard failures for CI.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_join.py           # SF 0.5
    PYTHONPATH=src python benchmarks/bench_join.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import os
import platform
import sys
from typing import Any, Callable, Iterator

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import invariants, kernels
from repro.relational.operators import (
    FirstTupleTimer,
    MergeJoin,
    MergeSemiJoin,
    TetrisOperator,
)
from repro.relational.table import Database
from repro.shard import CoPartitionedJoin, ShardedDatabase
from repro.storage import ICDE99_TESTBED
from repro.tpcd import TPCDConfig, generate, plans, reference_q3, reference_q4
from repro.tpcd.datagen import shuffled
from repro.tpcd.queries import (
    L_COMMITDATE,
    L_RECEIPTDATE,
    L_SHIPDATE,
    O_ORDERDATE,
    Q3Params,
    Q4Params,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Q3's pushdown needs qualifying orderkeys that form a band in the
#: *middle* of the key domain: on the correlated instance a two-sided
#: ORDERDATE window maps to a mid-domain ORDERKEY band, so the probe
#: pages *before* the band are pages plain Tetris still reads — the
#: merge join's early exit only truncates pages *after* the band —
#: while the pushdown cover skips them outright.  The SHIPDATE bound is
#: relaxed so those prefix pages pass the probe's own query box and the
#: savings are attributable to the key cover alone.  Identity is
#: asserted against ``reference_q3`` under the same params.
Q3_BENCH_PARAMS = Q3Params(
    orderdate_from=dt.date(1995, 1, 1),
    orderdate_before=dt.date(1995, 7, 1),
    shipdate_after=dt.date(1993, 6, 30),
)

SHARD_COUNTS = tuple(range(1, 9))


def _rung(
    db: Database,
    build_plan: Callable[[], Any],
    *,
    probe: Any = None,
) -> "tuple[list, dict[str, Any]]":
    """Consume one ladder rung; return (rows, measurements)."""
    db.reset_measurement()
    before = db.disk.snapshot()
    plan = build_plan()
    timer = FirstTupleTimer(plan, db.disk)
    rows = list(timer)
    delta = db.disk.snapshot() - before
    entry: dict[str, Any] = {
        "elapsed_simulated": round(delta.time, 6),
        "time_to_first": (
            round(timer.time_to_first, 6)
            if timer.time_to_first is not None
            else None
        ),
        "pages_read": delta.pages_read,
        "temp_pages_written": delta.pages_written,
        "rows": len(rows),
    }
    if probe is not None:
        entry["probe_pages_touched"] = probe.stats.regions_read
        entry["pages_skipped_by_pushdown"] = (
            probe.stats.pages_skipped_by_pushdown
        )
    return rows, entry


def _check_first_tuple(
    ladder: "dict[str, Any]", label: str, problems: "list[str]"
) -> None:
    """ISSUE criterion (b): the pipelined pushdown plan must reach its
    first tuple before the blocking FTS + external-sort baseline."""
    pushed = ladder["pushdown"]["time_to_first"]
    classic = ladder["classic"]["time_to_first"]
    if pushed is None or classic is None:
        problems.append(f"{label} first-tuple latency was not measured")
    elif pushed >= classic:
        problems.append(
            f"{label} pushdown first-tuple latency did not beat the "
            "classic FTS+sort baseline"
        )


def bench_q3_ladder(data, problems: "list[str]") -> dict[str, Any]:
    params = Q3_BENCH_PARAMS
    db = Database(ICDE99_TESTBED, buffer_pages=256)
    customer_heap = plans.build_customer_heap(db, data)
    order_heap = plans.build_order_heap(db, data)
    lineitem_heap = plans.build_lineitem_heap(db, data)
    customer_ub = plans.build_customer_ub(db, data)
    order_ub = plans.build_order_ub(db, data)
    lineitem_ub = plans.build_lineitem_ub_sort(db, data)

    ladder: dict[str, Any] = {}

    def classic():
        access, _ = plans.q3_lineitem_access("fts-sort", db, lineitem_heap, params)
        return plans.q3_full_plan(
            db, customer_heap, order_heap, access, params, use_tetris=False
        )

    classic_rows, ladder["classic"] = _rung(db, classic)

    tetris_probe, _ = plans.q3_lineitem_access("tetris", db, lineitem_ub, params)
    tetris_rows, ladder["tetris"] = _rung(
        db,
        lambda: plans.q3_full_plan(
            db, customer_ub, order_ub, tetris_probe, params, use_tetris=True
        ),
        probe=tetris_probe,
    )

    db.reset_measurement()
    before = db.disk.snapshot()
    pushed = plans.q3_pushdown_plan(db, customer_ub, order_ub, lineitem_ub, params)
    timer = FirstTupleTimer(pushed.plan, db.disk)
    pushdown_rows = list(timer)
    delta = db.disk.snapshot() - before
    ladder["pushdown"] = {
        "elapsed_simulated": round(delta.time, 6),
        "time_to_first": (
            round(timer.time_to_first, 6) if timer.time_to_first is not None else None
        ),
        "pages_read": delta.pages_read,
        "temp_pages_written": delta.pages_written,
        "rows": len(pushdown_rows),
        "probe_pages_touched": pushed.probe.stats.regions_read,
        "pages_skipped_by_pushdown": (
            pushed.probe.stats.pages_skipped_by_pushdown
        ),
        "cover_intervals": len(pushed.cover.intervals),
        "cover_keys": pushed.cover.key_count,
        "cover_is_hull": pushed.cover.is_hull,
        "build_rows": pushed.build_rows,
    }

    reference = reference_q3(data, params)
    for name, rows in (
        ("classic", classic_rows),
        ("tetris", tetris_rows),
        ("pushdown", pushdown_rows),
    ):
        if [row[3] for row in rows] != [row[3] for row in reference]:
            problems.append(f"Q3 {name} plan diverged from reference_q3")
    if pushdown_rows != tetris_rows:
        problems.append("Q3 pushdown output is not bit-identical to tetris")
    if ladder["pushdown"]["pages_skipped_by_pushdown"] <= 0:
        problems.append("Q3 pushdown skipped no pages")
    if (
        ladder["pushdown"]["probe_pages_touched"]
        >= ladder["tetris"]["probe_pages_touched"]
    ):
        problems.append("Q3 pushdown did not strictly reduce probe pages")
    _check_first_tuple(ladder, "Q3", problems)
    return ladder


def bench_q4_ladder(data, problems: "list[str]") -> dict[str, Any]:
    params = Q4Params()
    db = Database(ICDE99_TESTBED, buffer_pages=256)
    order_heap = plans.build_order_heap(db, data)
    order_ub = plans.build_order_ub(db, data)
    lineitem_ub = plans.build_lineitem_ub_q4(db, data)

    ladder: dict[str, Any] = {}

    def classic():
        access, _ = plans.q4_order_access("fts-sort", db, order_heap, params)
        return plans.q4_full_plan(db, access, lineitem_ub, params)

    classic_rows, ladder["classic"] = _rung(db, classic)

    # the plain-Tetris rung runs through the pipelined handle so the
    # LINEITEM probe's page count is observable (plan construction is
    # lazy: no I/O happens until the rung consumes it)
    pipelined = plans.q4_pipelined_plan(db, order_ub, lineitem_ub, params)
    tetris_rows, ladder["tetris"] = _rung(
        db, lambda: pipelined.plan, probe=pipelined.right
    )

    db.reset_measurement()
    before = db.disk.snapshot()
    pushed = plans.q4_pushdown_plan(db, order_ub, lineitem_ub, params)
    timer = FirstTupleTimer(pushed.plan, db.disk)
    pushdown_rows = list(timer)
    delta = db.disk.snapshot() - before
    ladder["pushdown"] = {
        "elapsed_simulated": round(delta.time, 6),
        "time_to_first": (
            round(timer.time_to_first, 6) if timer.time_to_first is not None else None
        ),
        "pages_read": delta.pages_read,
        "temp_pages_written": delta.pages_written,
        "rows": len(pushdown_rows),
        "probe_pages_touched": pushed.probe.stats.regions_read,
        "pages_skipped_by_pushdown": (
            pushed.probe.stats.pages_skipped_by_pushdown
        ),
        "cover_intervals": len(pushed.cover.intervals),
        "cover_keys": pushed.cover.key_count,
        "cover_is_hull": pushed.cover.is_hull,
        "build_rows": pushed.build_rows,
    }

    reference = reference_q4(data, params)
    for name, rows in (
        ("classic", classic_rows),
        ("tetris", tetris_rows),
        ("pushdown", pushdown_rows),
    ):
        if rows != reference:
            problems.append(f"Q4 {name} plan diverged from reference_q4")
    if pushdown_rows != tetris_rows:
        problems.append("Q4 pushdown output is not bit-identical to tetris")
    if ladder["pushdown"]["pages_skipped_by_pushdown"] <= 0:
        problems.append("Q4 pushdown skipped no pages")
    if (
        ladder["pushdown"]["probe_pages_touched"]
        >= ladder["tetris"]["probe_pages_touched"]
    ):
        problems.append("Q4 pushdown did not strictly reduce probe pages")
    _check_first_tuple(ladder, "Q4", problems)
    return ladder


def bench_q4_overlap(data, problems: "list[str]") -> dict[str, Any]:
    """Dual-cursor prefetch: Q4's two sweeps overlapped vs. sequential.

    ``sequential`` runs each input sweep alone to exhaustion (the no-
    overlap baseline: a join that materializes one side first pays the
    *sum*); ``pipelined`` interleaves them through the semi-join with
    each scan's internal solo prefetcher; ``dual_cursor`` replaces those
    with the join-aware policy.  The claim under test: the overlapped
    join's elapsed time lands near ``max`` of the two sweeps, and the
    dual-cursor policy is never slower than the solo prefetchers.
    """
    measurements: dict[str, Any] = {}
    params = Q4Params()

    def fresh_db():
        db = Database(
            ICDE99_TESTBED, buffer_pages=256, devices=4, prefetch_depth=8
        )
        return (
            db,
            plans.build_order_ub(db, data),
            plans.build_lineitem_ub_q4(db, data),
        )

    # the no-overlap baseline: each sweep alone, costs summed
    db, order_ub, lineitem_ub = fresh_db()
    sweep_elapsed: "list[float]" = []
    db.reset_measurement()
    before = db.disk.snapshot()
    order_stream, _ = plans.q4_order_access("tetris", db, order_ub, params)
    for _ in order_stream:
        pass
    sweep_elapsed.append((db.disk.snapshot() - before).time)
    db.reset_measurement()
    before = db.disk.snapshot()
    lineitem_stream = TetrisOperator(
        lineitem_ub,
        plans._q4_triangle(lineitem_ub),
        "l_orderkey",
        predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
    )
    for _ in lineitem_stream:
        pass
    sweep_elapsed.append((db.disk.snapshot() - before).time)
    measurements["sequential"] = {
        "order_sweep": round(sweep_elapsed[0], 6),
        "lineitem_sweep": round(sweep_elapsed[1], 6),
        "sum": round(sum(sweep_elapsed), 6),
        "max": round(max(sweep_elapsed), 6),
    }

    rows_by_mode: dict[bool, list] = {}
    for prefetch in (False, True):
        db, order_ub, lineitem_ub = fresh_db()
        db.reset_measurement()
        before = db.disk.snapshot()
        pipelined = plans.q4_pipelined_plan(
            db, order_ub, lineitem_ub, params, prefetch=prefetch
        )
        timer = FirstTupleTimer(pipelined.plan, db.disk)
        rows_by_mode[prefetch] = list(timer)
        delta = db.disk.snapshot() - before
        measurements["dual_cursor" if prefetch else "pipelined"] = {
            "elapsed_simulated": round(delta.time, 6),
            "time_to_first": (
                round(timer.time_to_first, 6)
                if timer.time_to_first is not None
                else None
            ),
            "pages_read": delta.pages_read,
        }
    if rows_by_mode[True] != rows_by_mode[False]:
        problems.append("Q4 dual-cursor prefetch changed the join output")
    sequential = measurements["sequential"]["sum"]
    overlapped = measurements["dual_cursor"]["elapsed_simulated"]
    solo = measurements["pipelined"]["elapsed_simulated"]
    measurements["overlap_vs_sequential"] = (
        round(sequential / overlapped, 3) if overlapped else None
    )
    if overlapped >= sequential:
        problems.append(
            "Q4 dual-cursor join did not beat the sequential-sweeps sum"
        )
    if overlapped > solo * (1 + 1e-9):
        problems.append(
            "Q4 dual-cursor prefetch ran slower than the solo prefetchers"
        )
    return measurements


def _serial_join_rows(
    schema,
    dims: "tuple[str, ...]",
    rows: "list[tuple]",
    restrictions,
    predicate,
    sort_attr: str,
    page_capacity: int,
) -> Iterator[tuple]:
    db = Database(buffer_pages=96)
    table = db.create_ub_table("serial", schema, dims, page_capacity)
    table.load(shuffled(rows))
    for _point, row in table.tetris_scan(restrictions, sort_attr):
        if predicate is None or predicate(row):
            yield row


def _sharded_join_series(
    data,
    *,
    kind: str,
    left_dims: "tuple[str, ...]",
    right_dims: "tuple[str, ...]",
    left_restrictions,
    right_restrictions,
    left_predicate,
    right_predicate,
    problems: "list[str]",
    label: str,
) -> dict[str, Any]:
    order_schema = data.order_schema
    lineitem_schema = data.lineitem_schema
    order_capacity = plans.order_page_capacity(data)
    lineitem_capacity = plans.lineitem_page_capacity(data)

    left_stream = _serial_join_rows(
        order_schema,
        left_dims,
        data.orders,
        left_restrictions,
        left_predicate,
        "o_orderkey",
        order_capacity,
    )
    right_stream = _serial_join_rows(
        lineitem_schema,
        right_dims,
        data.lineitems,
        right_restrictions,
        right_predicate,
        "l_orderkey",
        lineitem_capacity,
    )
    join_cls = MergeJoin if kind == "inner" else MergeSemiJoin
    oracle = list(
        join_cls(
            left_stream,
            right_stream,
            left_key=lambda row: row[0],
            right_key=lambda row: row[0],
        )
    )

    series: "list[dict[str, Any]]" = []
    base_elapsed: float | None = None
    for count in SHARD_COUNTS:
        left_sdb = ShardedDatabase(
            order_schema,
            left_dims,
            "o_orderkey",
            shards=count,
            page_capacity=order_capacity,
            buffer_pages=96,
        )
        left_sdb.load(lambda: iter(shuffled(data.orders)))
        right_sdb = ShardedDatabase(
            lineitem_schema,
            right_dims,
            "l_orderkey",
            shards=count,
            page_capacity=lineitem_capacity,
            buffer_pages=96,
        )
        right_sdb.load(lambda: iter(shuffled(data.lineitems)))
        join = CoPartitionedJoin(left_sdb, right_sdb, kind=kind)
        left_sdb.reset_measurement()
        right_sdb.reset_measurement()
        result = join.run(
            left_restrictions,
            right_restrictions,
            left_predicate=left_predicate,
            right_predicate=right_predicate,
        )
        if result.rows != oracle:
            problems.append(
                f"{label} sharded join k={count} diverged from the serial join"
            )
        if result.degraded or result.partial:
            problems.append(
                f"{label} sharded join k={count} degraded on a fault-free run"
            )
        elapsed = result.simulated_elapsed
        if base_elapsed is None:
            base_elapsed = elapsed
        series.append(
            {
                "shards": count,
                "elapsed_simulated": round(elapsed, 6),
                "speedup_vs_serial_legs": (
                    round(base_elapsed / elapsed, 3) if elapsed > 0 else None
                ),
                "per_shard_rows": list(result.per_shard_rows),
                "time_to_first_per_leg": [
                    round(event.time_to_first, 6)
                    for event in result.join_events
                    if event.time_to_first is not None
                ],
            }
        )
        print(
            f"[join] {label} sharded k={count} elapsed={elapsed:.4f}s "
            f"({len(result.rows):,} rows)"
        )
    elapsed_series = [entry["elapsed_simulated"] for entry in series]
    monotonic = all(
        later < earlier
        for earlier, later in zip(elapsed_series, elapsed_series[1:])
    )
    if not monotonic:
        problems.append(
            f"{label} sharded join elapsed not monotone decreasing in k"
        )
    return {
        "kind": kind,
        "rows_output": len(oracle),
        "series": series,
        "monotonic_decreasing": monotonic,
    }


def bench_sharded_joins(data, problems: "list[str]") -> dict[str, Any]:
    """Co-partitioned join scaling, k = 1..8.

    Run on an *uncorrelated* instance: with ``correlated_dates=True``
    the date restrictions land on a narrow orderkey band, so most
    range shards carry no work and the max-over-legs elapsed time is
    dominated by slab/band alignment rather than the shard count.
    Uniform dates keep per-shard work balanced, which is what the
    monotone-scaling claim is about.
    """
    q3 = Q3_BENCH_PARAMS
    q4 = Q4Params()
    day = dt.timedelta(days=1)
    return {
        "q3_inner": _sharded_join_series(
            data,
            kind="inner",
            label="Q3",
            problems=problems,
            left_dims=("o_orderkey", "o_orderdate"),
            right_dims=("l_orderkey", "l_shipdate"),
            left_restrictions={
                "o_orderdate": (q3.orderdate_from, q3.orderdate_before - day)
            },
            right_restrictions={
                "l_shipdate": (q3.shipdate_after + day, None)
            },
            left_predicate=lambda row: q3.order_qualifies(row[O_ORDERDATE]),
            right_predicate=lambda row: row[L_SHIPDATE] > q3.shipdate_after,
        ),
        "q4_semi": _sharded_join_series(
            data,
            kind="semi",
            label="Q4",
            problems=problems,
            left_dims=("o_orderkey", "o_orderdate"),
            right_dims=("l_orderkey", "l_commitdate", "l_receiptdate"),
            left_restrictions={
                "o_orderdate": (q4.orderdate_from, q4.orderdate_until - day)
            },
            right_restrictions=None,
            left_predicate=lambda row: (
                q4.orderdate_from <= row[O_ORDERDATE] < q4.orderdate_until
            ),
            right_predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
        ),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small scale factor"
    )
    parser.add_argument(
        "--scale-factor",
        type=float,
        default=None,
        help="TPC-D scale factor (default: 0.5, or 0.15 with --quick)",
    )
    parser.add_argument(
        "--assert-pushdown",
        action="store_true",
        help="fail (exit 1) unless every performance expectation holds",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_join.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if invariants.enabled():
        raise RuntimeError(
            "benchmarks must run with invariant checks disabled "
            "(unset REPRO_CHECKS); checks-on timings are not comparable"
        )
    from repro.storage import armed_disk_count

    if armed_disk_count():
        raise RuntimeError(
            "benchmarks must run fault-free; disarm every FaultyDisk "
            "before timing (chaos-mode numbers are not comparable)"
        )

    scale_factor = args.scale_factor or (0.15 if args.quick else 0.5)
    config = TPCDConfig(scale_factor=scale_factor, correlated_dates=True)
    data = generate(config)
    shard_config = TPCDConfig(scale_factor=scale_factor, correlated_dates=False)
    shard_data = generate(shard_config)
    print(
        f"[join] SF {scale_factor} (correlated dates): "
        f"{config.order_count:,} orders, {len(data.lineitems):,} lineitems"
    )

    problems: "list[str]" = []
    backends = kernels.available_backends()
    report: dict[str, Any] = {
        "workload": {
            "queries": ["Q3 (tightened date window)", "Q4"],
            "scale_factor": scale_factor,
            "correlated_dates": True,
            "orders": config.order_count,
            "shard_counts": list(SHARD_COUNTS),
            "quick": args.quick,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": None,
            "backends": list(backends),
        },
    }
    if "numpy" in backends:
        import numpy

        report["environment"]["numpy"] = numpy.__version__

    report["q3"] = bench_q3_ladder(data, problems)
    print(
        "[join] Q3 ladder: classic "
        f"{report['q3']['classic']['elapsed_simulated']}s, tetris "
        f"{report['q3']['tetris']['elapsed_simulated']}s, pushdown "
        f"{report['q3']['pushdown']['elapsed_simulated']}s "
        f"({report['q3']['pushdown']['pages_skipped_by_pushdown']} pages skipped)"
    )
    report["q4"] = bench_q4_ladder(data, problems)
    print(
        "[join] Q4 ladder: classic "
        f"{report['q4']['classic']['elapsed_simulated']}s, tetris "
        f"{report['q4']['tetris']['elapsed_simulated']}s, pushdown "
        f"{report['q4']['pushdown']['elapsed_simulated']}s "
        f"({report['q4']['pushdown']['pages_skipped_by_pushdown']} pages skipped)"
    )
    report["q4_overlap"] = bench_q4_overlap(data, problems)
    print(
        "[join] Q4 overlap: sequential sweeps "
        f"{report['q4_overlap']['sequential']['sum']}s (max "
        f"{report['q4_overlap']['sequential']['max']}s) vs dual-cursor "
        f"{report['q4_overlap']['dual_cursor']['elapsed_simulated']}s "
        f"({report['q4_overlap']['overlap_vs_sequential']}x)"
    )
    report["sharded"] = bench_sharded_joins(shard_data, problems)
    report["sharded"]["correlated_dates"] = False
    report["problems"] = problems

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")

    if problems:
        for problem in problems:
            print(f"ERROR: {problem}", file=sys.stderr)
        if args.assert_pushdown:
            return 1
        print(
            "(run with --assert-pushdown to turn these into a failure)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
