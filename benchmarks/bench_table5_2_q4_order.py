"""Table 5-2 / Figure 5-9: Q4 — sorting 3.5 % of ORDER on ORDERKEY.

Measured reproduction.  ORDER is materialized as heap, IOT(ORDERKEY),
IOT(ORDERDATE) and the paper's three-dimensional UB-Tree
(ORDERKEY, CUSTKEY, ORDERDATE).

Shape notes (also recorded in EXPERIMENTS.md): at a 3.5 % restriction
the paper's *own cost model* (Figure 4-2, small-s1 regime) puts the
clustered IOT on the restricted attribute ahead of Tetris, and a
prefetched FTS ahead of per-region random accesses; the paper's Oracle
measurement nevertheless had Tetris 3-11x ahead, a gap attributable to
factors outside the I/O model (the paper itself notes its setup
"disfavors" Tetris's baselines' in-kernel advantages in the other
direction).  Our model-faithful simulation reproduces the cost-model
orderings, so the assertions cover what both the paper's measurement
and its model agree on: Tetris beats IOT(ORDERKEY) outright,
IOT(ORDERDATE) beats FTS-sort, Tetris's first response and cache are
orders of magnitude ahead of every blocking plan.
"""

import pytest

from repro.relational.operators import FirstTupleTimer
from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import plans
from repro.tpcd.queries import Q4Params

from _support import format_table, report

PAPER = {
    1.0: {"first": 0.1, "slices": 256, "iot_ok": 813.8, "iot_od": 95.4,
          "fts": 335.2, "tetris": 29.7, "cache_mb": 0.2, "temp_mb": 12.9},
    2.0: {"first": 0.2, "slices": 256, "iot_ok": 1627.5, "iot_od": 194.2,
          "fts": 758.6, "tetris": 47.8, "cache_mb": 0.2, "temp_mb": 30.1},
    4.0: {"first": 0.3, "slices": 512, "iot_ok": 3254.9, "iot_od": 390.4,
          "fts": 1396.7, "tetris": 113.9, "cache_mb": 0.3, "temp_mb": 60.1},
}
PAGE_MB = 8 / 1024


def measure_scale(data):
    db = Database(ICDE99_TESTBED, buffer_pages=128)
    heap = plans.build_order_heap(db, data)
    iot_ok = plans.build_order_iot(db, data, "o_orderkey")
    iot_od = plans.build_order_iot(db, data, "o_orderdate")
    ub = plans.build_order_ub(db, data)
    params = Q4Params()

    results = {}
    for method, table in [
        ("tetris", ub),
        ("fts", heap),
        ("iot_ok", iot_ok),
        ("iot_od", iot_od),
    ]:
        db.reset_measurement()
        before = db.disk.snapshot()
        plan, instrumented = plans.q4_order_access(
            {"tetris": "tetris", "fts": "fts-sort", "iot_ok": "iot-orderkey",
             "iot_od": "iot-orderdate"}[method],
            db, table, params,
        )
        timer = FirstTupleTimer(plan, db.disk)
        rows = sum(1 for _ in timer)
        delta = db.disk.snapshot() - before
        entry = {"time": delta.time, "first": timer.time_to_first, "rows": rows}
        if method == "tetris":
            stats = instrumented.stats
            entry["slices"] = stats.slices
            entry["cache_mb"] = stats.cache_pages(table.page_capacity) * PAGE_MB
        elif instrumented is not None:
            entry["temp_mb"] = instrumented.stats.peak_temp_pages * PAGE_MB
        results[method] = entry
    results["table_mb"] = heap.page_count * PAGE_MB
    return results


@pytest.mark.parametrize("scale", [1.0, 2.0, 4.0])
def test_table5_2_q4_order(benchmark, tpcd, scale):
    data = tpcd(scale)
    results = benchmark.pedantic(measure_scale, args=(data,), rounds=1, iterations=1)
    paper = PAPER[scale]

    rows = [
        ["Tetris 1st response", f"{paper['first']}s",
         f"{results['tetris']['first']:.3f}s"],
        ["Tetris slices", paper["slices"], results["tetris"]["slices"]],
        ["Time IOT ORDERKEY", f"{paper['iot_ok']}s", f"{results['iot_ok']['time']:.1f}s"],
        ["Time IOT ORDERDATE", f"{paper['iot_od']}s", f"{results['iot_od']['time']:.2f}s"],
        ["Time FTS-Sort", f"{paper['fts']}s", f"{results['fts']['time']:.2f}s"],
        ["Time Tetris", f"{paper['tetris']}s", f"{results['tetris']['time']:.2f}s"],
        ["Cache Tetris", f"{paper['cache_mb']}MB",
         f"{results['tetris']['cache_mb']:.2f}MB"],
        ["Temp Storage IOT/FTS", f"{paper['temp_mb']}MB",
         f"{results['fts'].get('temp_mb', 0):.2f}MB"],
    ]
    report(
        f"table5_2_q4_order_sf{scale}",
        f"Table 5-2 — sorting 3.5% of ORDER by ORDERKEY (SF {scale}, "
        f"mini-scale {results['table_mb']:.1f}MB table)\n"
        "see module docstring: IOT(ORDERDATE) vs Tetris follows the paper's\n"
        "cost model rather than its Oracle measurement at this selectivity\n\n"
        + format_table(["metric", "paper", "measured"], rows),
    )

    tetris = results["tetris"]
    assert len({r["rows"] for r in (tetris, results["fts"], results["iot_ok"], results["iot_od"])}) == 1
    # orderings shared by the paper's measurement AND its cost model
    assert tetris["time"] < results["iot_ok"]["time"]
    assert results["iot_od"]["time"] < results["fts"]["time"]
    assert results["fts"]["time"] < results["iot_ok"]["time"]
    # pipelining: first Tetris response well below every blocking total
    assert tetris["first"] < tetris["time"] / 3
    assert tetris["first"] < results["fts"]["time"] / 2
    assert tetris["first"] < results["iot_ok"]["time"] / 25
    # tiny cache
    assert tetris["cache_mb"] <= 0.5
