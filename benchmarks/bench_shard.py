"""Range-sharded scan scaling benchmark (simulated clock).

One measurement backs the sharding PR's performance claim, written to
``BENCH_shard.json`` at the repo root: the Q3-style restricted Tetris
sweep over LINEITEM (SHIPDATE restriction, ORDERKEY order), re-run
against a :class:`~repro.shard.ShardedDatabase` with ``k`` = 1..8
range shards on the sort attribute.  Each shard owns its own simulated
disk and buffer pool and the coordinator scatters the restricted scan,
so the simulated elapsed time — the *maximum* per-shard I/O clock, the
scatter being parallel — must decrease monotonically with ``k`` while
the merged stream stays bit-identical to the unsharded engine's.

The world is loaded through the streaming TPC-D generator
(:func:`~repro.tpcd.stream_lineitems`): the coordinator re-invokes the
stream once per shard copy and filters it on the fly, so peak load
memory stays at one page batch no matter the scale factor — the
shard-by-shard loading path the streaming API exists for.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_shard.py           # SF 1
    PYTHONPATH=src python benchmarks/bench_shard.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import invariants, kernels
from repro.relational.rowsize import page_capacity_for
from repro.relational.table import Database
from repro.shard import ShardedDatabase
from repro.tpcd import TPCDConfig, stream_lineitems
from repro.tpcd.plans import LINEITEM_EXTRA_BYTES
from repro.tpcd.queries import Q3Params
from repro.tpcd.schema import lineitem_schema

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Q3's access pattern: SHIPDATE restriction (~50 %), ORDERKEY order —
#: sharded on the sort attribute, so every shard serves an ORDERKEY
#: interval and the k-way merge concatenates in order
DIMS = ("l_orderkey", "l_shipdate")
SHARD_ATTR = "l_orderkey"
SORT_ATTR = "l_orderkey"
SHARD_COUNTS = tuple(range(1, 9))


def _restrictions() -> dict[str, tuple[Any, Any]]:
    params = Q3Params()
    return {"l_shipdate": (params.shipdate_after, None)}


def _oracle_stream(
    config: TPCDConfig, schema: Any, page_capacity: int
) -> "list[tuple]":
    """The unsharded engine's exact keyed stream for the bench query."""
    db = Database(buffer_pages=96)
    table = db.create_ub_table("lineitem_ub", schema, DIMS, page_capacity)
    table.bulk_load(stream_lineitems(config))
    return list(table.tetris_scan(_restrictions(), SORT_ATTR))


def bench_shard_scaling(config: TPCDConfig) -> dict[str, Any]:
    schema = lineitem_schema(config.order_count)
    page_capacity = page_capacity_for(
        schema, extra_payload_bytes=LINEITEM_EXTRA_BYTES
    )
    oracle = _oracle_stream(config, schema, page_capacity)
    print(
        f"[shard] oracle: {len(oracle):,} tuples out of the unsharded scan "
        f"({page_capacity} rows/page)"
    )

    series: list[dict[str, Any]] = []
    base_elapsed: float | None = None
    for count in SHARD_COUNTS:
        sdb = ShardedDatabase(
            schema,
            DIMS,
            SHARD_ATTR,
            shards=count,
            page_capacity=page_capacity,
            buffer_pages=96,
        )
        loaded = sdb.load(lambda: stream_lineitems(config))
        sdb.reset_measurement()
        result = sdb.sorted_scan(_restrictions(), SORT_ATTR)
        if result.rows != oracle:
            raise AssertionError(
                f"shards={count}: merged stream diverged from the "
                "unsharded scan"
            )
        if result.degraded or result.partial:
            raise AssertionError(
                f"shards={count}: fault-free run degraded; timings are "
                "not comparable"
            )
        elapsed = result.simulated_elapsed
        if base_elapsed is None:
            base_elapsed = elapsed
        series.append(
            {
                "shards": count,
                "elapsed_simulated": round(elapsed, 6),
                "speedup_vs_unsharded": (
                    round(base_elapsed / elapsed, 3) if elapsed > 0 else None
                ),
                "rows_loaded": loaded,
                "per_shard_rows": list(result.per_shard_rows),
                "per_shard_elapsed": [
                    round(value, 6) for value in result.per_shard_elapsed
                ],
            }
        )
        print(
            f"[shard] k={count} elapsed={elapsed:.4f}s "
            f"(speedup {base_elapsed / elapsed:.2f}x, "
            f"{loaded:,} rows loaded shard-by-shard)"
        )
    elapsed_series = [entry["elapsed_simulated"] for entry in series]
    monotonic = all(
        later < earlier
        for earlier, later in zip(elapsed_series, elapsed_series[1:])
    )
    return {
        "backend": kernels.get_backend().name,
        "tuples_output": len(oracle),
        "page_capacity": page_capacity,
        "series": series,
        "monotonic_decreasing": monotonic,
        "identical_streams": True,  # asserted above, every k
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small scale factor",
    )
    parser.add_argument(
        "--scale-factor",
        type=float,
        default=None,
        help="TPC-D scale factor (default: 1.0, or 0.2 with --quick)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_shard.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if invariants.enabled():
        raise RuntimeError(
            "benchmarks must run with invariant checks disabled "
            "(unset REPRO_CHECKS); checks-on timings are not comparable"
        )
    from repro.storage import armed_disk_count

    if armed_disk_count():
        raise RuntimeError(
            "benchmarks must run fault-free; disarm every FaultyDisk "
            "before timing (chaos-mode numbers are not comparable)"
        )

    scale_factor = args.scale_factor or (0.2 if args.quick else 1.0)
    config = TPCDConfig(scale_factor=scale_factor)
    backends = kernels.available_backends()
    report: dict[str, Any] = {
        "workload": {
            "query": "Q3-style: 50% SHIPDATE restriction, ORDERKEY order",
            "scale_factor": scale_factor,
            "orders": config.order_count,
            "shard_attr": SHARD_ATTR,
            "shard_counts": list(SHARD_COUNTS),
            "streaming_load": True,
            "quick": args.quick,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": None,
            "backends": list(backends),
        },
    }
    if "numpy" in backends:
        import numpy

        report["environment"]["numpy"] = numpy.__version__

    print(
        f"[shard] SF {scale_factor}: {config.order_count:,} orders, "
        f"shards {SHARD_COUNTS[0]}..{SHARD_COUNTS[-1]} ..."
    )
    report["shard_scaling"] = bench_shard_scaling(config)

    if not report["shard_scaling"]["monotonic_decreasing"]:
        print(
            "ERROR: simulated elapsed is not monotonically decreasing "
            "in the shard count",
            file=sys.stderr,
        )
        return 1

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
