"""Wall-clock CPU benchmark for the batch-kernel layer.

Unlike the simulated-clock benchmarks around it, this harness measures
*real* time: it runs the kernel primitives (curve encode/decode, page
filtering, key argsort) and a 100k-tuple Q6-style ``TetrisScan`` under
both kernel backends, verifies the emitted tuple stream, page access
order and simulated-clock stats are bit-identical, and writes the
timings to ``BENCH_cpu.json`` at the repo root so future changes have a
perf trajectory to regress against.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_cpu_kernels.py           # full
    PYTHONPATH=src python benchmarks/bench_cpu_kernels.py --quick   # CI smoke

The pure-Python backend always runs; the NumPy rows appear only when
NumPy is importable (it is an optional dependency).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from typing import Any, Callable

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import invariants, kernels
from repro.core.curves import Curve
from repro.core.query_space import QueryBox
from repro.core.tetris import tetris_sorted
from repro.core.ubtree import UBTree
from repro.core.zorder import ZSpace
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the scan workload: a 4-d universe, Q6-style box restricting three of
#: the four attributes, sorted output on the unrestricted first one
SCAN_BITS = (16, 16, 16, 16)
SCAN_CAPACITY = 256
SEED = 20260805


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """Minimum wall-clock time over ``repeats`` runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# kernel micro-benchmarks: one column of points / keys per call
# ----------------------------------------------------------------------
def bench_kernels(backend: str, count: int, repeats: int) -> dict[str, float]:
    rng = random.Random(SEED)
    curve = Curve.z_curve(SCAN_BITS)
    points = [
        tuple(rng.randrange(1 << bits) for bits in SCAN_BITS)
        for _ in range(count)
    ]
    lo = tuple(1 << (bits - 2) for bits in SCAN_BITS)
    hi = tuple(3 * (1 << (bits - 2)) for bits in SCAN_BITS)
    box = QueryBox(lo, hi)
    with kernels.use_backend(backend):
        encode_time, addresses = _best_of(
            repeats, lambda: kernels.encode_batch(curve, points)
        )
        decode_time, decoded = _best_of(
            repeats, lambda: kernels.decode_batch(curve, addresses)
        )
        assert decoded == points
        filter_box_time, _ = _best_of(
            repeats, lambda: kernels.filter_box_batch(lo, hi, points)
        )
        filter_space_time, _ = _best_of(
            repeats, lambda: kernels.filter_space_batch(box, points)
        )
        shuffled = list(addresses)
        rng.shuffle(shuffled)
        argsort_time, _ = _best_of(
            repeats, lambda: kernels.argsort_keys(shuffled)
        )
    return {
        "encode_batch": encode_time,
        "decode_batch": decode_time,
        "filter_box_batch": filter_box_time,
        "filter_space_batch": filter_space_time,
        "argsort_keys": argsort_time,
    }


# ----------------------------------------------------------------------
# the headline workload: Q6-style TetrisScan
# ----------------------------------------------------------------------
def build_scan_tree(tuples: int) -> UBTree:
    rng = random.Random(SEED)
    rows = [
        (
            tuple(rng.randrange(1 << bits) for bits in SCAN_BITS),
            ("payload", index),
        )
        for index in range(tuples)
    ]
    disk = SimulatedDisk()
    buffer = BufferPool(disk, capacity=1 << 20)
    tree = UBTree(buffer, ZSpace(SCAN_BITS), page_capacity=SCAN_CAPACITY)
    tree.bulk_load(rows)
    return tree


def scan_box() -> QueryBox:
    lo = [0] * len(SCAN_BITS)
    hi = [(1 << bits) - 1 for bits in SCAN_BITS]
    # restrict dims 1-3 (Q6 restricts SHIPDATE, DISCOUNT and QUANTITY
    # and sorts on an unrestricted attribute)
    lo[1], hi[1] = 0, (1 << SCAN_BITS[1]) // 2
    lo[2], hi[2] = (1 << SCAN_BITS[2]) // 10, (1 << SCAN_BITS[2]) * 4 // 10
    lo[3], hi[3] = (1 << SCAN_BITS[3]) // 4, (1 << SCAN_BITS[3]) * 55 // 100
    return QueryBox(tuple(lo), tuple(hi))


def run_scan(tree: UBTree, space: QueryBox) -> tuple[list, list, dict]:
    scan = tetris_sorted(tree, space, 0)
    stream = list(scan)
    return stream, scan.page_access_order, vars(scan.stats)


def bench_scan(
    backend: str, tuples: int, repeats: int
) -> tuple[dict[str, Any], tuple]:
    # a fresh tree per backend keeps the simulated disk clocks aligned,
    # so the stats parity check below compares like with like
    tree = build_scan_tree(tuples)
    space = scan_box()
    with kernels.use_backend(backend):
        stream, pages, stats = run_scan(tree, space)  # parity reference
        elapsed, (stream2, pages2, _) = _best_of(
            repeats, lambda: run_scan(tree, space)
        )
    assert stream2 == stream and pages2 == pages
    result = {
        "seconds": elapsed,
        "tuples_scanned": tuples,
        "tuples_output": stats["tuples_output"],
        "pages_read": len(pages),
    }
    return result, (stream, pages, stats)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small workloads, one repetition",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_cpu.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if invariants.enabled():
        raise RuntimeError(
            "benchmarks must run with invariant checks disabled "
            "(unset REPRO_CHECKS); checks-on timings are not comparable"
        )
    from repro.storage import armed_disk_count, armed_scheduler_count

    if armed_disk_count():
        raise RuntimeError(
            "benchmarks must run fault-free; disarm every FaultyDisk "
            "before timing (chaos-mode numbers are not comparable)"
        )
    if armed_scheduler_count():
        raise RuntimeError(
            "CPU benchmarks must run without prefetching; disarm every "
            "IOScheduler before timing (scheduler numbers belong in "
            "BENCH_parallel.json via bench_parallel.py)"
        )

    kernel_count = 10_000 if args.quick else 100_000
    scan_tuples = 10_000 if args.quick else 100_000
    repeats = 1 if args.quick else 5

    backends = kernels.available_backends()
    report: dict[str, Any] = {
        "workload": {
            "bits": list(SCAN_BITS),
            "page_capacity": SCAN_CAPACITY,
            "kernel_batch": kernel_count,
            "scan_tuples": scan_tuples,
            "repeats": repeats,
            "quick": args.quick,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": None,
            "backends": list(backends),
        },
        "kernels": {},
        "tetris_scan": {},
    }
    if "numpy" in backends:
        import numpy

        report["environment"]["numpy"] = numpy.__version__

    parity: dict[str, tuple] = {}
    for backend in backends:
        print(f"[{backend}] kernel primitives ({kernel_count:,} points) ...")
        report["kernels"][backend] = bench_kernels(
            backend, kernel_count, repeats
        )
        print(f"[{backend}] Q6-style TetrisScan ({scan_tuples:,} tuples) ...")
        report["tetris_scan"][backend], parity[backend] = bench_scan(
            backend, scan_tuples, repeats
        )

    if len(parity) == 2:
        python_run, numpy_run = parity["python"], parity["numpy"]
        identical = python_run == numpy_run
        report["tetris_scan"]["identical_across_backends"] = identical
        speedup = (
            report["tetris_scan"]["python"]["seconds"]
            / report["tetris_scan"]["numpy"]["seconds"]
        )
        report["tetris_scan"]["numpy_speedup"] = round(speedup, 2)
        print(
            f"scan parity (stream, page order, stats): {identical}; "
            f"numpy speedup: {speedup:.2f}x"
        )
        if not identical:
            print("ERROR: backends disagree on the scan", file=sys.stderr)
            return 1

    for backend, times in report["kernels"].items():
        line = "  ".join(f"{name}={value * 1e3:.2f}ms" for name, value in times.items())
        print(f"[{backend}] {line}")
    for backend in backends:
        scan_result = report["tetris_scan"][backend]
        print(
            f"[{backend}] scan: {scan_result['seconds'] * 1e3:.1f}ms "
            f"({scan_result['tuples_output']} tuples out, "
            f"{scan_result['pages_read']} pages)"
        )

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
