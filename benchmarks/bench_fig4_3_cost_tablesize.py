"""Figure 4-3: sorting on A2 with s1 = 20 %, table-size sweep.

Analytic reproduction with the Section 4.3 parameters.  Expected shape
(asserted): once the restricted data spills out of the 32 MB work
memory, Tetris is cheapest and the gap widens with table size; below the
spill threshold the in-memory-sorted FTS wins (the left edge of the
paper's plot, where all curves bunch together).
"""

from repro.costmodel import (
    SECTION_4_PARAMS,
    c_fts_sort,
    c_iot_sort,
    c_sort,
    c_tetris,
)

from _support import format_table, report

SELECTIVITY = 0.2
TABLE_PAGES = [2_000, 10_000, 25_000, 50_000, 125_000, 250_000, 500_000]


def cost_lines():
    rows = []
    for pages in TABLE_PAGES:
        rows.append(
            {
                "pages": pages,
                "tetris": c_tetris(
                    pages, [(0.0, SELECTIVITY), (0.0, 1.0)], SECTION_4_PARAMS
                ),
                "fts-sort": c_fts_sort(pages, [SELECTIVITY, 1.0], SECTION_4_PARAMS),
                "iot-a1-sort": c_iot_sort(
                    pages, [SELECTIVITY, 1.0], SECTION_4_PARAMS
                ),
                "iot-a2": c_iot_sort(
                    pages, [1.0, SELECTIVITY], SECTION_4_PARAMS, sort_on_leading=True
                ),
                "spills": c_sort(pages, [SELECTIVITY, 1.0], SECTION_4_PARAMS) > 0,
            }
        )
    return rows


def test_fig4_3_tablesize_sweep(benchmark):
    rows = benchmark.pedantic(cost_lines, rounds=1, iterations=1)

    table = format_table(
        ["pages", "Tetris", "FTS-sort", "IOT(A1)+sort", "IOT(A2)", "sort spills"],
        [
            [
                f"{r['pages']:,}",
                f"{r['tetris']:.1f}s",
                f"{r['fts-sort']:.1f}s",
                f"{r['iot-a1-sort']:.1f}s",
                f"{r['iot-a2']:.1f}s",
                "yes" if r["spills"] else "no",
            ]
            for r in rows
        ],
    )
    report(
        "fig4_3_cost_tablesize",
        "Figure 4-3 — sorting on A2 with s1 = 20%, varying table size\n"
        "paper shape: Tetris cheapest for every table size that spills the\n"
        "32 MB sort memory, and the advantage grows with the table\n\n" + table,
    )

    # Tetris wins strictly for every table clearly past the spill point,
    # and keeps winning once it is ahead (a single crossover)
    for r in rows:
        if r["pages"] >= 50_000:
            assert r["tetris"] < r["fts-sort"], r["pages"]
            assert r["tetris"] < r["iot-a1-sort"], r["pages"]
            assert r["tetris"] < r["iot-a2"], r["pages"]
    wins = [r["tetris"] < r["fts-sort"] for r in rows]
    first_win = wins.index(True)
    assert all(wins[first_win:]), "Tetris must keep winning past the crossover"
    crossover_pages = rows[first_win]["pages"]
    assert 10_000 < crossover_pages <= 50_000  # near the spill threshold
    # the advantage grows with size
    gaps = [r["fts-sort"] / r["tetris"] for r in rows if r["spills"]]
    assert gaps[-1] > gaps[0]
    benchmark.extra_info["gap_at_max_size"] = round(gaps[-1], 2)
    benchmark.extra_info["crossover_pages"] = crossover_pages
