"""Ablation: the two Tetris strategies (event-point sweep vs. eager heap).

DESIGN.md calls out the dual implementation as a deliberate design
decision.  This benchmark verifies on a sizeable tree that both
strategies access the same pages in the same order (identical simulated
I/O) and compares their *wall-clock* CPU cost — the one place they may
differ, since the sweep recomputes event points with bit arithmetic
while the eager variant pre-keys all regions.
"""

import random
import time

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, SimulatedDisk

from _support import format_table, report


def build(bits=(8, 8), rows=15000, page_capacity=16, seed=3):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace(bits), page_capacity=page_capacity)
    rng = random.Random(seed)
    for index in range(rows):
        tree.insert(tuple(rng.randrange(1 << b) for b in bits), index)
    return tree


def run(tree, strategy):
    box = QueryBox((0, 32), (191, 223))
    started = time.perf_counter()
    scan = tetris_sorted(tree, box, 1, strategy=strategy)
    count = sum(1 for _ in scan)
    wall = time.perf_counter() - started
    return {
        "wall": wall,
        "rows": count,
        "pages": list(scan.page_access_order),
        "io_time": scan.stats.elapsed,
        "cache": scan.stats.max_cache_tuples,
    }


def test_ablation_strategy_equivalence(benchmark):
    tree = build()
    results = benchmark.pedantic(
        lambda: {s: run(tree, s) for s in ("sweep", "eager")},
        rounds=1,
        iterations=1,
    )
    sweep, eager = results["sweep"], results["eager"]

    report(
        "ablation_strategy",
        "Ablation — sweep (event points) vs eager (static keys)\n\n"
        + format_table(
            ["strategy", "wall clock", "sim I/O", "rows", "pages", "peak cache"],
            [
                ["sweep", f"{sweep['wall']:.3f}s", f"{sweep['io_time']:.2f}s",
                 sweep["rows"], len(sweep["pages"]), sweep["cache"]],
                ["eager", f"{eager['wall']:.3f}s", f"{eager['io_time']:.2f}s",
                 eager["rows"], len(eager["pages"]), eager["cache"]],
            ],
        ),
    )

    # provable equivalence, demonstrated at scale
    assert sweep["pages"] == eager["pages"]
    assert sweep["rows"] == eager["rows"]
    assert abs(sweep["io_time"] - eager["io_time"]) < 1e-6
