"""Scheduler scaling and slab-parallel wall-clock benchmark.

Two measurements back the PR's performance claims, written to
``BENCH_parallel.json`` at the repo root:

* **scheduler scaling** (simulated clock): the Q3-style restricted
  Tetris sweep over LINEITEM, re-run with the multi-queue
  :class:`~repro.storage.scheduler.IOScheduler` striping pages across
  ``d`` = 1..4 device queues with sweep-ahead prefetching armed.  The
  simulated elapsed time must decrease monotonically with ``d`` (reads
  overlap across queues) while the emitted stream stays bit-identical
  to the single-disk engine's.

* **slab-parallel speedup** (wall clock): the same sweep executed
  serially and through
  :func:`~repro.planner.parallel.parallel_tetris_scan` with 2 and 4
  workers on a ~100k-tuple LINEITEM instance, under both kernel
  backends.  The serial baseline is reported twice — *cold* (first
  touch: buffer-pool misses, column builds) and *warm* (best of the
  repeats) — and every speedup is computed against the **warm** number,
  the honest one.  Each worker entry records the executor that ran
  (``threads``/``fork``/``inline``), any
  :class:`~repro.planner.parallel.ExecutorFallbackEvent`, the pickled
  bytes the transport shipped per slab (zero for the zero-copy
  executors), and ``underprovisioned: true`` whenever the host has
  fewer cores than workers — on such a host the numbers cannot show a
  speedup and say so instead of hiding it.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI smoke

CI gate mode (used by the ``speedup`` workflow leg)::

    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        --assert-speedup 1.5 --workers 4

which exits non-zero when the measured 4-worker speedup on the NumPy
backend falls below the threshold — or skips with an annotation (exit
0) when the host has fewer than 4 cores, so laptop checkouts and
throttled runners do not fail spuriously.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import invariants, kernels
from repro.planner import parallel_tetris_scan
from repro.relational.table import Database, UBTable
from repro.tpcd import TPCDConfig, generate
from repro.tpcd.plans import build_lineitem_ub_sort
from repro.tpcd.queries import Q3Params

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Q3's access pattern: SHIPDATE restriction (~50 %), ORDERKEY order
SORT_ATTR = "l_orderkey"
PREFETCH_DEPTH = 16


def _restrictions() -> dict[str, tuple[Any, Any]]:
    params = Q3Params()
    return {"l_shipdate": (params.shipdate_after, None)}


def _build_world(
    data: Any, *, devices: int = 1, prefetch_depth: int = 0
) -> tuple[Database, UBTable]:
    db = Database(buffer_pages=128, devices=devices, prefetch_depth=prefetch_depth)
    table = build_lineitem_ub_sort(db, data)
    db.reset_measurement()
    return db, table


# ----------------------------------------------------------------------
# simulated clock: device-queue scaling with prefetch armed
# ----------------------------------------------------------------------
def bench_scheduler_scaling(data: Any) -> dict[str, Any]:
    series: list[dict[str, Any]] = []
    reference: list | None = None
    for devices in (1, 2, 3, 4):
        db, table = _build_world(
            data, devices=devices, prefetch_depth=PREFETCH_DEPTH
        )
        before = db.disk.stats.time
        stream = list(table.tetris_scan(_restrictions(), SORT_ATTR))
        elapsed = db.disk.stats.time - before
        prefetch = db.disk.stats.prefetch
        if reference is None:
            reference = stream
        elif stream != reference:
            raise AssertionError(
                f"devices={devices}: stream diverged from the single-disk scan"
            )
        series.append(
            {
                "devices": devices,
                "elapsed_simulated": round(elapsed, 6),
                "prefetch_issued": prefetch.prefetch_issued,
                "prefetch_hits": prefetch.prefetch_hits,
                "prefetch_wasted": prefetch.prefetch_wasted,
                "queue_busy_time": round(prefetch.queue_busy_time, 6),
                "queue_wait_time": round(prefetch.queue_wait_time, 6),
            }
        )
        print(
            f"[scheduler] devices={devices} elapsed={elapsed:.4f}s "
            f"(prefetch {prefetch.prefetch_hits} hits / "
            f"{prefetch.prefetch_wasted} wasted)"
        )
    elapsed_series = [entry["elapsed_simulated"] for entry in series]
    monotonic = all(
        later < earlier
        for earlier, later in zip(elapsed_series, elapsed_series[1:])
    )
    assert reference is not None
    return {
        "backend": kernels.get_backend().name,
        "prefetch_depth": PREFETCH_DEPTH,
        "tuples_output": len(reference),
        "series": series,
        "monotonic_decreasing": monotonic,
        "identical_streams": True,  # asserted above
    }


# ----------------------------------------------------------------------
# wall clock: serial vs slab-parallel execution
# ----------------------------------------------------------------------
def bench_parallel_speedup(
    data: Any,
    backend: str,
    repeats: int,
    worker_counts: "tuple[int, ...]" = (2, 4),
) -> tuple[dict[str, Any], list]:
    restrictions = _restrictions()
    cpu_count = os.cpu_count() or 1
    with kernels.use_backend(backend):
        db, table = _build_world(data)
        # cold baseline: the first touch pays buffer-pool misses and
        # per-page column builds that every later run amortizes
        db.reset_measurement()
        start = time.perf_counter()
        serial_stream = list(table.tetris_scan(restrictions, SORT_ATTR))
        serial_cold = time.perf_counter() - start
        # warm baseline: best of the repeats — the number the parallel
        # runs (which also enjoy warm caches) must honestly beat
        serial_warm = serial_cold
        for _ in range(repeats):
            db.reset_measurement()
            start = time.perf_counter()
            serial_stream = list(table.tetris_scan(restrictions, SORT_ATTR))
            serial_warm = min(serial_warm, time.perf_counter() - start)
        entry: dict[str, Any] = {
            "serial_cold_seconds": round(serial_cold, 4),
            "serial_warm_seconds": round(serial_warm, 4),
            "tuples_output": len(serial_stream),
            "workers": {},
        }
        print(
            f"[{backend}] serial cold {serial_cold:.3f}s, "
            f"warm {serial_warm:.3f}s"
        )
        for workers in worker_counts:
            best = float("inf")
            result = None
            for _ in range(repeats):
                db.reset_measurement()
                start = time.perf_counter()
                result = parallel_tetris_scan(
                    table,
                    restrictions,
                    SORT_ATTR,
                    workers=workers,
                    measure_serialization=True,
                )
                best = min(best, time.perf_counter() - start)
                if result.rows != serial_stream:
                    raise AssertionError(
                        f"{backend}/workers={workers}: parallel stream is "
                        "not bit-identical to the serial scan"
                    )
            assert result is not None
            serialized = list(result.serialized_bytes_per_slab or [])
            entry["workers"][str(workers)] = {
                "seconds": round(best, 4),
                "speedup": round(serial_warm / best, 3) if best > 0 else None,
                "pool_workers": result.workers,
                "executor": result.executor,
                "fallbacks": [event.describe() for event in result.fallbacks],
                "serialized_bytes_per_slab": serialized,
                "serialized_bytes_total": sum(serialized),
                "bit_identical": True,  # asserted above
                "underprovisioned": cpu_count < workers,
            }
            print(
                f"[{backend}] workers={workers} {best:.3f}s via "
                f"{result.executor} (warm serial {serial_warm:.3f}s, "
                f"speedup {serial_warm / best:.2f}x, "
                f"{sum(serialized)} bytes serialized"
                f"{', UNDERPROVISIONED' if cpu_count < workers else ''})"
            )
    return entry, serial_stream


# ----------------------------------------------------------------------
# CI gate: --assert-speedup
# ----------------------------------------------------------------------
def assert_speedup(threshold: float, workers: int, quick: bool) -> int:
    cpu_count = os.cpu_count() or 1
    if cpu_count < workers:
        # GitHub annotation, visible on the job summary; exiting 0 keeps
        # underprovisioned hosts (laptops, throttled runners) green
        print(
            f"::notice::speedup gate skipped: host has {cpu_count} "
            f"core(s), fewer than the {workers} workers under test "
            "(underprovisioned)"
        )
        return 0
    backends = kernels.available_backends()
    backend = "numpy" if "numpy" in backends else backends[0]
    scale_factor = 0.5 if quick else 1.7
    data = generate(TPCDConfig(scale_factor=scale_factor))
    print(
        f"[gate] {len(data.lineitems):,} LINEITEM tuples, backend "
        f"{backend}, {workers} workers, threshold {threshold}x ..."
    )
    entry, _ = bench_parallel_speedup(
        data, backend, repeats=3, worker_counts=(workers,)
    )
    measured = entry["workers"][str(workers)]["speedup"]
    if measured is None or measured < threshold:
        print(
            f"ERROR: {workers}-worker speedup {measured}x is below the "
            f"required {threshold}x on a {cpu_count}-core host",
            file=sys.stderr,
        )
        return 1
    print(f"[gate] OK: {measured}x >= {threshold}x")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small workloads, one repetition",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_parallel.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="gate mode: fail unless the --workers speedup reaches X "
        "(skips with an annotation on hosts with fewer cores)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for --assert-speedup (default: 4)",
    )
    args = parser.parse_args(argv)

    if invariants.enabled():
        raise RuntimeError(
            "benchmarks must run with invariant checks disabled "
            "(unset REPRO_CHECKS); checks-on timings are not comparable"
        )
    from repro.storage import armed_disk_count

    if armed_disk_count():
        raise RuntimeError(
            "benchmarks must run fault-free; disarm every FaultyDisk "
            "before timing (chaos-mode numbers are not comparable)"
        )

    if args.assert_speedup is not None:
        return assert_speedup(args.assert_speedup, args.workers, args.quick)

    # ~100k LINEITEM tuples at SF 1.7 (1/100-scale generator); the
    # scheduler-scaling leg rebuilds the world once per device count, so
    # it runs at a smaller scale to keep the sweep affordable
    speedup_sf = 0.25 if args.quick else 1.7
    scaling_sf = 0.1 if args.quick else 0.5
    repeats = 1 if args.quick else 3

    speedup_data = generate(TPCDConfig(scale_factor=speedup_sf))
    scaling_data = (
        speedup_data
        if scaling_sf == speedup_sf
        else generate(TPCDConfig(scale_factor=scaling_sf))
    )
    backends = kernels.available_backends()
    cpu_count = os.cpu_count() or 1
    report: dict[str, Any] = {
        "workload": {
            "query": "Q3-style: 50% SHIPDATE restriction, ORDERKEY order",
            "speedup_scale_factor": speedup_sf,
            "speedup_lineitems": len(speedup_data.lineitems),
            "scaling_scale_factor": scaling_sf,
            "scaling_lineitems": len(scaling_data.lineitems),
            "repeats": repeats,
            "quick": args.quick,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": None,
            "backends": list(backends),
            "cpu_count": cpu_count,
            # the headline claim needs 4 true cores; anything less and
            # every 4-worker number below is a ceiling, not a result
            "underprovisioned": cpu_count < 4,
        },
    }
    if "numpy" in backends:
        import numpy

        report["environment"]["numpy"] = numpy.__version__

    print(
        f"[scheduler] {len(scaling_data.lineitems):,} LINEITEM tuples, "
        f"devices 1..4, prefetch depth {PREFETCH_DEPTH} ..."
    )
    report["scheduler_scaling"] = bench_scheduler_scaling(scaling_data)

    streams: dict[str, list] = {}
    speedup: dict[str, Any] = {}
    for backend in backends:
        print(
            f"[{backend}] slab-parallel scan "
            f"({len(speedup_data.lineitems):,} LINEITEM tuples) ..."
        )
        speedup[backend], streams[backend] = bench_parallel_speedup(
            speedup_data, backend, repeats
        )
    if len(streams) == 2:
        identical = streams["python"] == streams["numpy"]
        speedup["identical_across_backends"] = identical
        print(f"stream parity across backends: {identical}")
        if not identical:
            print("ERROR: backends disagree on the scan", file=sys.stderr)
            return 1
    report["parallel_speedup"] = speedup

    if not report["scheduler_scaling"]["monotonic_decreasing"]:
        print(
            "ERROR: simulated elapsed is not monotonically decreasing "
            "in the device count",
            file=sys.stderr,
        )
        return 1

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
