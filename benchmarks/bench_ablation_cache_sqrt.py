"""Ablation: the square-root law of the Tetris cache (Section 4.4).

"For two-dimensional UB-Trees the cache size is a square root function
of the number of Z-regions overlapping the query box, i.e.
cache = sqrt(P * s1 * s2)."  This benchmark measures the peak slice
cache (in pages) over growing tables and checks the sqrt fit.
"""

import math
import random

from repro.core import QueryBox, UBTree, ZSpace, tetris_sorted
from repro.storage import BufferPool, SimulatedDisk

from _support import format_table, report

PAGE_CAPACITY = 16
ROW_COUNTS = [2000, 4000, 8000, 16000, 32000]


def build(rows):
    disk = SimulatedDisk()
    tree = UBTree(BufferPool(disk, 256), ZSpace([9, 9]), page_capacity=PAGE_CAPACITY)
    rng = random.Random(rows)
    for index in range(rows):
        tree.insert((rng.randrange(512), rng.randrange(512)), index)
    return tree


def sweep():
    lines = []
    for rows in ROW_COUNTS:
        tree = build(rows)
        box = QueryBox.full(tree.space.coord_max)  # s1 = s2 = 1
        scan = tetris_sorted(tree, box, 1)
        for _ in scan:
            pass
        cache_pages = scan.stats.cache_pages(PAGE_CAPACITY)
        lines.append(
            {
                "rows": rows,
                "regions": tree.region_count,
                "cache_pages": cache_pages,
                "sqrt_p": math.sqrt(tree.region_count),
                "fit": cache_pages / math.sqrt(tree.region_count),
            }
        )
    return lines


def test_ablation_cache_sqrt(benchmark):
    lines = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(
        "ablation_cache_sqrt",
        "Ablation — Tetris cache vs sqrt(P) on 2-d UB-Trees (full-space sort)\n\n"
        + format_table(
            ["rows", "P (regions)", "cache pages", "sqrt(P)", "cache/sqrt(P)"],
            [
                [
                    l["rows"],
                    l["regions"],
                    l["cache_pages"],
                    f"{l['sqrt_p']:.1f}",
                    f"{l['fit']:.2f}",
                ]
                for l in lines
            ],
        ),
    )

    # the sqrt fit holds within a small constant across a 16x size range
    for line in lines:
        assert 0.3 <= line["fit"] <= 3.0, line
    # doubling the table multiplies the cache by ~sqrt(2), not 2:
    # total growth over 16x data stays well below linear
    growth = lines[-1]["cache_pages"] / max(1, lines[0]["cache_pages"])
    size_growth = lines[-1]["regions"] / lines[0]["regions"]
    assert growth < size_growth / 2
    benchmark.extra_info["cache_growth"] = growth
    benchmark.extra_info["size_growth"] = round(size_growth, 2)
