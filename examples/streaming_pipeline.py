"""Pipelined sorting: why non-blocking matters for interactive queries.

Section 4.4: a merge sort produces nothing until the last merge pass
begins, while the Tetris algorithm emits each completed slice as the
sweep passes it.  This example asks both plans for *the first page of
results* (LIMIT 20) of a restricted, sorted query and shows how much
I/O each one had to do before it could answer.

Run:  python examples/streaming_pipeline.py
"""

import random

from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import (
    ExternalMergeSort,
    FirstTupleTimer,
    FullTableScan,
    Limit,
    TetrisOperator,
)


def main() -> None:
    schema = Schema(
        [
            Attribute("region", IntEncoder(0, 255)),
            Attribute("timestamp", IntEncoder(0, 65535)),
            Attribute("event_id", IntEncoder(0, 10**9)),
        ]
    )
    db = Database(buffer_pages=256)
    rng = random.Random(11)
    events = [
        (rng.randrange(256), rng.randrange(65536), event_id)
        for event_id in range(20000)
    ]

    heap = db.create_heap_table("events_heap", schema, page_capacity=50)
    heap.load(events)
    ub = db.create_ub_table(
        "events_ub", schema, dims=("region", "timestamp"), page_capacity=50
    )
    ub.load(events)

    # "Show me the first 20 events of regions 0..63, oldest first."
    predicate = lambda row: row[0] <= 63  # noqa: E731

    print("query: first 20 events of regions 0..63, ordered by timestamp\n")

    db.reset_measurement()
    before = db.disk.snapshot()
    tetris = TetrisOperator(ub, {"region": (0, 63)}, "timestamp")
    timer = FirstTupleTimer(Limit(tetris, 20), db.disk)
    first_page = list(timer)
    tetris_io = db.disk.snapshot() - before
    print("Tetris (pipelined):")
    print(f"  time to 1st row : {timer.time_to_first * 1000:9.1f} ms")
    print(f"  time to 20 rows : {timer.elapsed * 1000:9.1f} ms")
    print(f"  pages read      : {tetris_io.pages_read}")
    print(f"  temp pages      : {tetris_io.pages_written}")

    db.reset_measurement()
    before = db.disk.snapshot()
    sort = ExternalMergeSort(
        FullTableScan(heap, predicate=predicate),
        key=lambda row: row[1],
        disk=db.disk,
        memory_pages=8,
        page_capacity=50,
    )
    timer2 = FirstTupleTimer(Limit(sort, 20), db.disk)
    first_page_sorted = list(timer2)
    sort_io = db.disk.snapshot() - before
    print("\nFTS + external merge sort (blocking):")
    print(f"  time to 1st row : {timer2.time_to_first * 1000:9.1f} ms")
    print(f"  time to 20 rows : {timer2.elapsed * 1000:9.1f} ms")
    print(f"  pages read      : {sort_io.pages_read}")
    print(f"  temp pages      : {sort_io.pages_written}")

    assert [r[1] for r in first_page] == [r[1] for r in first_page_sorted]
    speedup = timer2.time_to_first / timer.time_to_first
    print(f"\nfirst-row speedup of the Tetris algorithm: {speedup:.0f}x")
    print("(the merge sort must read, write and re-read everything before")
    print(" it can emit a single row — the sweep answers from its first slice)")


if __name__ == "__main__":
    main()
