"""Set operations without sorting: Section 2's catalogue on Tetris streams.

"Projection, union, intersection and set difference are efficiently
implemented by processing a relation in some sort order."  This example
keeps two snapshots of a sensor catalogue in UB-Trees, reads both in
(station, day) order through the Tetris operator — no external sort —
and computes which readings are new, which disappeared, and the merged
distinct catalogue, all in one pipelined pass each.

Run:  python examples/sorted_set_operations.py
"""

import random

from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import (
    Difference,
    Distinct,
    Intersect,
    Project,
    TetrisOperator,
    Union,
)


def main() -> None:
    schema = Schema(
        [
            Attribute("station", IntEncoder(0, 255)),
            Attribute("day", IntEncoder(0, 365)),
            Attribute("reading", IntEncoder(0, 10**6)),
        ]
    )
    db = Database(buffer_pages=128)
    rng = random.Random(23)

    def snapshot(drop_rate):
        return [
            (rng.randrange(256), rng.randrange(366), rng.randrange(10**6))
            for _ in range(8000)
            if rng.random() > drop_rate
        ]

    old = db.create_ub_table("old", schema, dims=("station", "day"), page_capacity=40)
    old_rows = snapshot(0.0)
    old.bulk_load(old_rows)
    new = db.create_ub_table("new", schema, dims=("station", "day"), page_capacity=40)
    new_rows = old_rows[: len(old_rows) // 2] + snapshot(0.3)
    new.bulk_load(new_rows)

    key = lambda row: (row[0], row[1])  # noqa: E731  (station, day)

    def sorted_keys(table):
        """Composite-order Tetris stream, projected to the key."""
        stream = TetrisOperator(table, None, ("station", "day"))
        return Distinct(Project(stream, lambda row: (row[0], row[1])), key)

    db.reset_measurement()
    before = db.disk.snapshot()
    appeared = list(Difference(sorted_keys(new), sorted_keys(old), key))
    disappeared = list(Difference(sorted_keys(old), sorted_keys(new), key))
    stable = list(Intersect(sorted_keys(old), sorted_keys(new), key))
    merged = list(Union([sorted_keys(old), sorted_keys(new)], key))
    io = db.disk.snapshot() - before

    print(f"old snapshot : {len(old_rows)} readings, {old.page_count} Z-regions")
    print(f"new snapshot : {len(new_rows)} readings, {new.page_count} Z-regions")
    print(f"appeared     : {len(appeared)} (station, day) keys")
    print(f"disappeared  : {len(disappeared)}")
    print(f"stable       : {len(stable)}")
    print(f"merged       : {len(merged)} distinct keys")
    print(f"\nsimulated I/O: {io.time:.2f}s, {io.pages_read} pages, "
          f"{io.pages_written} temp pages (no external sort anywhere)")

    # cross-check against plain Python sets
    old_keys = {(r[0], r[1]) for r in old_rows}
    new_keys = {(r[0], r[1]) for r in new_rows}
    assert len(appeared) == len(new_keys - old_keys)
    assert len(disappeared) == len(old_keys - new_keys)
    assert len(stable) == len(old_keys & new_keys)
    assert len(merged) == len(old_keys | new_keys)
    print("verified against set semantics")


if __name__ == "__main__":
    main()
