"""TPC-D analytics: Q3, Q4 and Q6 end to end, Tetris vs. classic plans.

Recreates the paper's Section 5 scenario at mini scale: the same logical
queries executed against different physical organizations of the same
data, all on one simulated disk, with simulated response times printed
side by side.

Run:  python examples/tpcd_analytics.py [scale_factor]
"""

import sys

from repro.relational.operators import FirstTupleTimer
from repro.relational.table import Database
from repro.storage import ICDE99_TESTBED
from repro.tpcd import TPCDConfig, generate, reference_q3, reference_q4, reference_q6
from repro.tpcd import plans
from repro.tpcd.queries import Q3Params, Q4Params, Q6Params


def run_timed(db, plan):
    db.reset_measurement()
    before = db.disk.snapshot()
    timer = FirstTupleTimer(plan, db.disk)
    rows = list(timer)
    delta = db.disk.snapshot() - before
    return rows, timer, delta


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    data = generate(TPCDConfig(scale_factor=scale))
    print(
        f"TPC-D mini at SF {scale}: {len(data.customers)} customers, "
        f"{len(data.orders)} orders, {len(data.lineitems)} lineitems\n"
    )

    # ------------------------------------------------------------------
    # Q3: restrictions + joins + grouping + ordering
    # ------------------------------------------------------------------
    db = Database(ICDE99_TESTBED, buffer_pages=256)
    params3 = Q3Params()
    customer_ub = plans.build_customer_ub(db, data)
    order_ub = plans.build_order_ub(db, data)
    lineitem_ub = plans.build_lineitem_ub_sort(db, data)
    customer_heap = plans.build_customer_heap(db, data)
    order_heap = plans.build_order_heap(db, data)
    lineitem_heap = plans.build_lineitem_heap(db, data)

    tetris_access, _ = plans.q3_lineitem_access("tetris", db, lineitem_ub, params3)
    tetris_plan = plans.q3_full_plan(
        db, customer_ub, order_ub, tetris_access, params3, use_tetris=True
    )
    rows_t, timer_t, io_t = run_timed(db, tetris_plan)

    classic_access, _ = plans.q3_lineitem_access("fts-sort", db, lineitem_heap, params3)
    classic_plan = plans.q3_full_plan(
        db, customer_heap, order_heap, classic_access, params3, use_tetris=False
    )
    rows_c, timer_c, io_c = run_timed(db, classic_plan)

    reference = reference_q3(data, params3)
    assert [r[3] for r in rows_t] == [r[3] for r in reference]
    assert [r[3] for r in rows_c] == [r[3] for r in reference]

    print("Q3 (shipping priority) — identical results from both plans")
    print(f"  Tetris operator tree : {io_t.time:8.2f} s simulated")
    print(f"  classic FTS/hash tree: {io_c.time:8.2f} s simulated")
    print(f"  top result group     : {rows_t[0][:3]} revenue={rows_t[0][3]}\n")

    # ------------------------------------------------------------------
    # Q4: EXISTS semijoin through the triangular query space
    # ------------------------------------------------------------------
    params4 = Q4Params()
    lineitem_q4 = plans.build_lineitem_ub_q4(db, data)
    order_access, _ = plans.q4_order_access("tetris", db, order_ub, params4)
    q4_plan = plans.q4_full_plan(db, order_access, lineitem_q4, params4)
    rows4, timer4, io4 = run_timed(db, q4_plan)
    assert rows4 == reference_q4(data, params4)
    print("Q4 (order priority checking) — COMMITDATE < RECEIPTDATE pushed")
    print("  into the sweep as a non-rectangular query space")
    print(f"  result: {rows4}")
    print(f"  simulated time: {io4.time:.2f} s\n")

    # ------------------------------------------------------------------
    # Q6: multi-attribute restriction
    # ------------------------------------------------------------------
    params6 = Q6Params()
    lineitem_range = plans.build_lineitem_ub_range(db, data)
    expected6 = reference_q6(data, params6)
    print("Q6 (forecasting revenue change) — response time per access method")
    for method, table in [
        ("tetris", lineitem_range),
        ("fts", lineitem_heap),
    ]:
        plan = plans.q6_full_plan(method, db, table, params6)
        rows6, _, io6 = run_timed(db, plan)
        assert rows6[0][0] == expected6
        print(f"  {method:8s}: {io6.time:8.2f} s simulated")
    print(f"  revenue numerator: {expected6} (cent-percent units)")


if __name__ == "__main__":
    main()
