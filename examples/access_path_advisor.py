"""Access-path advisor: the Section 4.5 guidance as a working optimizer.

Sweeps the selectivity of a restriction on A1 for a sort-on-A2 query
over a 125k-page relation (the paper's Figure 4-2 setting) and prints
which access path the cost model selects in each regime, plus the full
cost table at a few interesting points.

Run:  python examples/access_path_advisor.py
"""

from repro.costmodel import SECTION_4_PARAMS
from repro.planner import RelationStats, choose_plan, enumerate_plans

STATS = RelationStats(
    pages=125_000,  # about 1 GB at 8 kB pages, as in Section 4.3
    attributes=("a1", "a2"),
    heap_instance="lineitem_heap",
    iot_instances=(("a1", "lineitem_iot_a1"), ("a2", "lineitem_iot_a2")),
    ub_instance="lineitem_ub",
)


def main() -> None:
    print("sort on A2 with a range restriction on A1, 125k-page relation")
    print(f"(t_pi=10ms, t_tau=1ms, C=16, M=32MB, m=2)\n")

    print("chosen access path by selectivity of the A1 restriction:")
    previous = None
    for permille in range(1, 1001):
        selectivity = permille / 1000
        plan = choose_plan(STATS, {"a1": (0.0, selectivity)}, "a2", SECTION_4_PARAMS)
        label = f"{plan.method} on {plan.instance}"
        if label != previous:
            print(f"  from s1 = {selectivity:6.1%}: {label}")
            previous = label

    for selectivity in (0.001, 0.05, 0.2, 0.5, 1.0):
        print(f"\nfull cost table at s1 = {selectivity:.1%}:")
        for plan in enumerate_plans(
            STATS, {"a1": (0.0, selectivity)}, "a2", SECTION_4_PARAMS
        ):
            print(f"  {plan}")

    print("\ninteractive consumer (needs early rows): pipelined plans only")
    plan = choose_plan(
        STATS, {"a1": (0.0, 0.001)}, "a2", SECTION_4_PARAMS, require_pipelined=True
    )
    print(f"  at s1 = 0.1%: {plan}")

    execute_demo()


def execute_demo() -> None:
    """Close the loop: derive stats from real tables and run the pick."""
    import random

    from repro.costmodel import CostParameters
    from repro.planner import PhysicalDesign, plan_sorted_query
    from repro.relational import Attribute, Database, IntEncoder, Schema

    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("payload", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(1)
    rows = [(rng.randrange(1024), rng.randrange(1024), i) for i in range(5000)]
    db = Database(buffer_pages=64)
    design = PhysicalDesign(
        attributes=("a1", "a2"),
        heap=db.create_heap_table("heap", schema, 40),
        iots={
            "a1": db.create_iot("iot_a1", schema, ("a1", "a2"), 40),
            "a2": db.create_iot("iot_a2", schema, ("a2", "a1"), 40),
        },
        ub=db.create_ub_table("ub", schema, ("a1", "a2"), 40),
    )
    for table in (design.heap, design.iots["a1"], design.iots["a2"], design.ub):
        table.load(rows)

    print("\nexecuting the optimizer's pick on a live (simulated) database:")
    for restrictions in ({"a1": (0, 511)}, {"a1": (0, 3)}, None):
        db.reset_measurement()
        before = db.disk.snapshot()
        plan = plan_sorted_query(
            design, restrictions, "a2", CostParameters(memory_pages=8)
        )
        count = sum(1 for _ in plan.operator)
        elapsed = (db.disk.snapshot() - before).time
        label = restrictions or "no restriction"
        print(
            f"  {str(label):22s} -> {plan.choice.method:13s} "
            f"estimated {plan.choice.cost:6.2f}s, measured {elapsed:6.2f}s, "
            f"{count} rows"
        )


if __name__ == "__main__":
    main()
