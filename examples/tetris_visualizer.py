"""Animated (frame-by-frame) view of the Tetris sweep — Figure 3-6 in text.

Builds a small 16x16 universe, runs the Tetris algorithm over a query
box sorted bottom-to-top, and prints a snapshot of the retrieved space
after every few region fetches.  The staircase of '#' blocks filling the
box from below is exactly why the authors named the algorithm after the
computer game.

Run:  python examples/tetris_visualizer.py
"""

import random

from repro import BufferPool, QueryBox, SimulatedDisk, UBTree, ZSpace, tetris_sorted
from repro.viz import render_partitioning, render_sweep


def main() -> None:
    space = ZSpace([4, 4])
    disk = SimulatedDisk()
    ubtree = UBTree(BufferPool(disk, 128), space, page_capacity=3)
    rng = random.Random(7)
    for index in range(140):
        ubtree.insert((rng.randrange(16), rng.randrange(16)), index)

    print("Z-region partitioning (one glyph per region):\n")
    print(render_partitioning(ubtree))

    box = QueryBox((2, 1), (13, 14))
    scan = tetris_sorted(ubtree, box, sort_dim=1)  # sweep upward in dim 1
    emitted = 0
    frames = 0
    pages_so_far: list[int] = []
    iterator = iter(scan)

    print("\nsweeping the thick query box upward in sort order of A2:")
    for point, _ in iterator:
        emitted += 1
        if len(scan.page_access_order) > len(pages_so_far):
            pages_so_far = list(scan.page_access_order)
            frames += 1
            if frames % 4 == 0:
                print(
                    f"\nafter {len(pages_so_far)} region fetches, "
                    f"{emitted} tuples already delivered:"
                )
                print(render_sweep(ubtree, box, pages_so_far))

    print(
        f"\ndone: {scan.stats.regions_read} regions read once each, "
        f"{scan.stats.tuples_output} tuples in {scan.stats.slices} slices, "
        f"peak cache {scan.stats.max_cache_tuples} tuples"
    )


if __name__ == "__main__":
    main()
