"""Quickstart: a multidimensional table and a sorted, restricted read.

Builds a small two-dimensional UB-Tree-organized table on the simulated
disk, then uses the Tetris algorithm to read a restricted query box in
sort order of either attribute — no external sort, each page touched
once, and the first rows stream out long before the scan finishes.

Run:  python examples/quickstart.py
"""

import random

from repro import BufferPool, QueryBox, SimulatedDisk, UBTree, ZSpace, tetris_sorted
from repro.viz import render_partitioning, render_sweep


def main() -> None:
    # A 2-D universe with 6 bits per attribute (64 x 64 cells).
    space = ZSpace([6, 6])
    disk = SimulatedDisk()
    ubtree = UBTree(BufferPool(disk, 256), space, page_capacity=8)

    rng = random.Random(42)
    for order_id in range(500):
        point = (rng.randrange(64), rng.randrange(64))
        ubtree.insert(point, {"order_id": order_id})
    print(f"loaded {len(ubtree)} tuples into {ubtree.region_count} Z-regions\n")

    # Restrict attribute 0 to [16, 47] and read sorted by attribute 1.
    box = QueryBox((16, 0), (47, 63))
    scan = tetris_sorted(ubtree, box, sort_dim=1)

    print("first ten tuples, sorted by attribute 1:")
    for position, (point, payload) in enumerate(scan):
        if position < 10:
            print(f"  {point}  {payload}")
        # keep consuming to finish the sweep and finalize the statistics
    stats = scan.stats

    print("\nsweep statistics (simulated I/O):")
    print(f"  regions read     : {stats.regions_read} (of {ubtree.region_count})")
    print(f"  tuples delivered : {stats.tuples_output}")
    print(f"  slices           : {stats.slices}")
    print(f"  peak cache       : {stats.max_cache_tuples} tuples")
    print(f"  time to 1st tuple: {stats.time_to_first * 1000:.1f} ms")
    print(f"  total time       : {stats.elapsed * 1000:.1f} ms")

    # A smaller tree renders nicely as ASCII (Figure 3-6 flavour).
    small_space = ZSpace([3, 3])
    small_disk = SimulatedDisk()
    small = UBTree(BufferPool(small_disk, 64), small_space, page_capacity=2)
    for _ in range(24):
        small.insert((rng.randrange(8), rng.randrange(8)), None)
    print("\nZ-region partitioning of an 8x8 universe (one glyph per region):")
    print(render_partitioning(small))

    small_box = QueryBox((1, 1), (6, 6))
    small_scan = tetris_sorted(small, small_box, sort_dim=1)
    list(small_scan)
    halfway = small_scan.page_access_order[: len(small_scan.page_access_order) // 2]
    print("\nsweep snapshot halfway ('#' read, '·' pending, blank outside box):")
    print(render_sweep(small, small_box, halfway))


if __name__ == "__main__":
    main()
